//! Interleaved pixel sequences — BSLC's static load balancing.
//!
//! Molnar et al. observe that sparse merging is load-unbalanced when one
//! processor's half-image holds more non-blank pixels than its partner's.
//! BSLC (Section 3.3, Figure 6) fixes this by exchanging *interleaved
//! sections* instead of contiguous halves: non-blank pixels are spread
//! almost evenly over both halves regardless of where the object projects.
//!
//! A [`StridedSeq`] denotes the arithmetic sequence of linear pixel indices
//! `{ start + i·stride : 0 ≤ i < count }`. Splitting it into even- and
//! odd-position subsequences doubles the stride, which is exactly the
//! per-stage halving binary-swap needs.

use serde::{Deserialize, Serialize};

/// An arithmetic sequence of linear pixel indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridedSeq {
    /// First index.
    pub start: usize,
    /// Distance between consecutive indices (≥ 1).
    pub stride: usize,
    /// Number of indices.
    pub count: usize,
}

impl StridedSeq {
    /// The dense sequence `0, 1, …, len−1` covering a whole image.
    pub fn dense(len: usize) -> Self {
        StridedSeq {
            start: 0,
            stride: 1,
            count: len,
        }
    }

    /// Splits into (even-position, odd-position) subsequences.
    ///
    /// Both children have stride `2 × self.stride`; the even child keeps
    /// `ceil(count / 2)` elements. Together they partition `self` exactly.
    pub fn split(self) -> (StridedSeq, StridedSeq) {
        let even = StridedSeq {
            start: self.start,
            stride: self.stride * 2,
            count: self.count.div_ceil(2),
        };
        let odd = StridedSeq {
            start: self.start + self.stride,
            stride: self.stride * 2,
            count: self.count / 2,
        };
        (even, odd)
    }

    /// The `i`-th index of the sequence.
    #[inline]
    pub fn index(&self, i: usize) -> usize {
        debug_assert!(i < self.count);
        self.start + i * self.stride
    }

    /// Iterates the linear indices in order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count).map(move |i| self.index(i))
    }

    /// Whether the sequence contains linear index `idx`.
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start
            && (idx - self.start).is_multiple_of(self.stride)
            && (idx - self.start) / self.stride < self.count
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_iterates_all() {
        let s = StridedSeq::dense(5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn split_partitions_exactly() {
        let s = StridedSeq::dense(9);
        let (e, o) = s.split();
        assert_eq!(e.iter().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
        assert_eq!(o.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        assert_eq!(e.count + o.count, s.count);
    }

    #[test]
    fn nested_splits_stay_disjoint() {
        let s = StridedSeq::dense(16);
        let (e, o) = s.split();
        let (ee, eo) = e.split();
        let (oe, oo) = o.split();
        let mut all: Vec<usize> = ee
            .iter()
            .chain(eo.iter())
            .chain(oe.iter())
            .chain(oo.iter())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
        assert_eq!(ee.stride, 4);
    }

    #[test]
    fn contains_checks_membership() {
        let s = StridedSeq {
            start: 3,
            stride: 4,
            count: 3,
        }; // 3, 7, 11
        assert!(s.contains(3));
        assert!(s.contains(7));
        assert!(s.contains(11));
        assert!(!s.contains(15));
        assert!(!s.contains(4));
        assert!(!s.contains(0));
    }

    #[test]
    fn split_empty_and_single() {
        let empty = StridedSeq::dense(0);
        let (e, o) = empty.split();
        assert!(e.is_empty() && o.is_empty());
        let one = StridedSeq::dense(1);
        let (e, o) = one.split();
        assert_eq!(e.count, 1);
        assert_eq!(o.count, 0);
    }

    #[test]
    fn balanced_counts_after_log_splits() {
        // Splitting a dense sequence k times yields 2^k pieces whose counts
        // differ by at most 1 — the static load-balancing guarantee.
        let mut pieces = vec![StridedSeq::dense(1000)];
        for _ in 0..4 {
            pieces = pieces
                .into_iter()
                .flat_map(|p| {
                    let (a, b) = p.split();
                    [a, b]
                })
                .collect();
        }
        let counts: Vec<usize> = pieces.iter().map(|p| p.count).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }
}
