//! Image-space primitives for sort-last-sparse parallel volume rendering.
//!
//! This crate provides the pixel model (premultiplied RGBA, 16 bytes — the
//! pixel size used throughout the paper's cost equations), image buffers,
//! bounding-rectangle algebra, the `over` compositing operator, run-length
//! encodings (the blank/non-blank *mask* RLE of Section 3.3 and the
//! value RLE of Ahrens & Painter used as a related-work baseline), and the
//! interleaved pixel sequences that implement BSLC's static load balancing.
//!
//! Everything here is purely sequential; the distributed compositing methods
//! built on top live in `slsvr-core`.

pub mod checksum;
pub mod image;
pub mod interleave;
pub mod kernel;
pub mod pgm;
pub mod pixel;
pub mod png;
pub mod rect;
pub mod rle;
pub mod run_image;
pub mod stats;

pub use crate::image::Image;
pub use crate::interleave::StridedSeq;
pub use crate::pixel::{Pixel, BYTES_PER_PIXEL};
pub use crate::rect::Rect;
pub use crate::rle::{MaskRle, RunSet, ValueRle, BYTES_PER_RUN_CODE};
pub use crate::run_image::RunImage;
pub use crate::stats::{sparsity_profile, SparsityProfile};
