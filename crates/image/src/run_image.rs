//! Compressed-domain (run-length) image representation and merge kernel.
//!
//! A [`RunImage`] stores a pixel sequence as its blank/non-blank
//! [`MaskRle`] run table plus the densely packed non-blank payload — the
//! exact representation BSLC/BSBRC put on the wire. The point of keeping
//! it live past the wire is [`RunImage::over`]: two run streams composite
//! *directly*, walking both run tables span by span:
//!
//! * blank × blank — skipped in `O(1)` per run, no pixel is touched;
//! * blank × non-blank (either side) — the surviving span is copied as
//!   one bulk slice;
//! * non-blank × non-blank — only the overlap hits the `over` math, via
//!   the auto-vectorized [`kernel::over_slice`].
//!
//! Cost is `O(runs + overlapping_non_blank_pixels)` instead of the
//! decode-to-dense `O(n)`, which is the paper's sparsity argument carried
//! through the merge tree instead of being thrown away at each stage.

use crate::kernel;
use crate::pixel::Pixel;
use crate::rle::MaskRle;

/// A pixel sequence in run-length form: run table + packed non-blank
/// payload. The sequence length is fixed at construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunImage {
    len: usize,
    mask: MaskRle,
    packed: Vec<Pixel>,
}

impl RunImage {
    /// Encodes a dense pixel sequence (`O(n)`).
    pub fn encode(pixels: &[Pixel]) -> Self {
        let mask = MaskRle::encode_mask(pixels.iter().map(|p| !p.is_blank()));
        let mut packed = Vec::with_capacity(mask.non_blank_total());
        for (start, len) in mask.non_blank_runs() {
            packed.extend_from_slice(&pixels[start..start + len]);
        }
        RunImage {
            len: pixels.len(),
            mask,
            packed,
        }
    }

    /// Reassembles from a run table and its packed payload (e.g. straight
    /// off the wire). Panics if the payload length disagrees with the
    /// run table or the runs overflow `len`.
    pub fn from_parts(len: usize, mask: MaskRle, packed: Vec<Pixel>) -> Self {
        assert_eq!(packed.len(), mask.non_blank_total());
        let end = mask
            .non_blank_runs()
            .last()
            .map_or(0, |(start, run)| start + run);
        assert!(end <= len, "run table spills past the sequence length");
        RunImage { len, mask, packed }
    }

    /// Sequence length (dense pixel count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-blank pixels stored.
    pub fn non_blank(&self) -> usize {
        self.packed.len()
    }

    /// The blank/non-blank run table.
    pub fn mask(&self) -> &MaskRle {
        &self.mask
    }

    /// The packed non-blank payload, in sequence order.
    pub fn packed(&self) -> &[Pixel] {
        &self.packed
    }

    /// Expands to a dense sequence.
    pub fn decode(&self) -> Vec<Pixel> {
        let mut out = vec![Pixel::BLANK; self.len];
        self.decode_into(&mut out);
        out
    }

    /// Scatters the payload into `out` (which must be `len` pixels);
    /// positions outside the runs are left untouched.
    pub fn decode_into(&self, out: &mut [Pixel]) {
        assert_eq!(out.len(), self.len);
        let mut src = 0;
        for (start, len) in self.mask.non_blank_runs() {
            out[start..start + len].copy_from_slice(&self.packed[src..src + len]);
            src += len;
        }
    }

    /// Composites `self` **over** `back` entirely in the compressed
    /// domain, returning the merged stream. Each output pixel is exactly
    /// `front.over(back)` of the dense operands (blank = [`Pixel::BLANK`]),
    /// but only overlapping non-blank spans pay the `over` arithmetic.
    ///
    /// One-sided spans are bulk-copied, which matches `over` against a
    /// blank operand bit-for-bit for pixels with non-negative components
    /// (the renderer's domain); a negative-zero component would come out
    /// as `+0.0` from the dense arithmetic but is preserved by the copy.
    pub fn over(&self, back: &RunImage) -> RunImage {
        assert_eq!(self.len, back.len, "sequences must be the same length");
        // Materialized run lists with packed-payload offsets.
        let offsets = |r: &RunImage| -> Vec<(usize, usize, usize)> {
            let mut off = 0;
            r.mask
                .non_blank_runs()
                .map(|(start, len)| {
                    let o = off;
                    off += len;
                    (start, start + len, o)
                })
                .collect()
        };
        let fruns = offsets(self);
        let bruns = offsets(back);

        let mut packed = Vec::with_capacity(self.packed.len() + back.packed.len());
        // Output non-blank intervals, coalesced as they are produced so
        // the run table comes out canonical.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        let (mut fi, mut bi) = (0, 0);
        let mut pos = 0;
        while pos < self.len {
            while fi < fruns.len() && fruns[fi].1 <= pos {
                fi += 1;
            }
            while bi < bruns.len() && bruns[bi].1 <= pos {
                bi += 1;
            }
            let f = fruns.get(fi);
            let b = bruns.get(bi);
            let f_active = f.is_some_and(|r| r.0 <= pos);
            let b_active = b.is_some_and(|r| r.0 <= pos);
            // The segment ends at the nearest run boundary ahead.
            let mut end = self.len;
            if let Some(&(s, e, _)) = f {
                end = end.min(if f_active { e } else { s });
            }
            if let Some(&(s, e, _)) = b {
                end = end.min(if b_active { e } else { s });
            }
            let seg = end - pos;
            match (f_active, b_active) {
                // blank × blank: skip the whole gap without touching pixels.
                (false, false) => {}
                (true, false) => {
                    let &(fs, _, fo) = f.unwrap();
                    packed.extend_from_slice(&self.packed[fo + (pos - fs)..][..seg]);
                    push_interval(&mut intervals, pos, end);
                }
                (false, true) => {
                    let &(bs, _, bo) = b.unwrap();
                    packed.extend_from_slice(&back.packed[bo + (pos - bs)..][..seg]);
                    push_interval(&mut intervals, pos, end);
                }
                (true, true) => {
                    let &(fs, _, fo) = f.unwrap();
                    let &(bs, _, bo) = b.unwrap();
                    let at = packed.len();
                    packed.extend_from_slice(&back.packed[bo + (pos - bs)..][..seg]);
                    kernel::over_slice(&self.packed[fo + (pos - fs)..][..seg], &mut packed[at..]);
                    push_interval(&mut intervals, pos, end);
                }
            }
            pos = end;
        }
        RunImage {
            len: self.len,
            mask: MaskRle::from_runs(intervals.iter().map(|&(s, e)| (s, e - s))),
            packed,
        }
    }
}

/// Appends `[start, end)` to the interval list, merging with the previous
/// interval when adjacent (runs from consecutive segments must coalesce
/// for the output run table to be canonical).
fn push_interval(intervals: &mut Vec<(usize, usize)>, start: usize, end: usize) {
    if let Some(last) = intervals.last_mut() {
        if last.1 == start {
            last.1 = end;
            return;
        }
    }
    intervals.push((start, end));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(i: usize) -> Pixel {
        Pixel::from_straight(
            (i % 7) as f32 / 7.0,
            (i % 5) as f32 / 5.0,
            (i % 3) as f32 / 3.0,
            0.2 + 0.7 * ((i % 11) as f32 / 11.0),
        )
    }

    fn sparse(n: usize, seed: usize, density_pct: usize) -> Vec<Pixel> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2_654_435_761).wrapping_add(seed * 97);
                if h % 100 < density_pct {
                    px(h)
                } else {
                    Pixel::BLANK
                }
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips() {
        for density in [0, 10, 50, 100] {
            let dense = sparse(513, density + 1, density);
            let run = RunImage::encode(&dense);
            assert_eq!(run.decode(), dense);
            assert_eq!(
                run.non_blank(),
                dense.iter().filter(|p| !p.is_blank()).count()
            );
        }
    }

    #[test]
    fn compressed_over_equals_dense_over() {
        for (df, db) in [(0, 30), (30, 0), (15, 40), (100, 100), (3, 97)] {
            let front = sparse(777, 1, df);
            let back = sparse(777, 2, db);
            let merged = RunImage::encode(&front).over(&RunImage::encode(&back));
            let expect: Vec<Pixel> = front.iter().zip(&back).map(|(f, b)| f.over(*b)).collect();
            assert_eq!(merged.decode(), expect, "df={df} db={db}");
        }
    }

    #[test]
    fn merged_run_table_is_canonical() {
        let front = sparse(400, 5, 20);
        let back = sparse(400, 6, 20);
        let merged = RunImage::encode(&front).over(&RunImage::encode(&back));
        let reencoded = RunImage::encode(&merged.decode());
        assert_eq!(merged.mask(), reencoded.mask());
    }

    #[test]
    fn blank_blank_merge_stores_nothing() {
        let blank = RunImage::encode(&vec![Pixel::BLANK; 1024]);
        let merged = blank.over(&blank);
        assert_eq!(merged.non_blank(), 0);
        assert_eq!(merged.mask().num_codes(), 0);
    }

    #[test]
    fn from_parts_validates_payload() {
        let dense = sparse(100, 3, 30);
        let run = RunImage::encode(&dense);
        let rebuilt = RunImage::from_parts(100, run.mask().clone(), run.packed().to_vec());
        assert_eq!(rebuilt, run);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_short_payload() {
        let dense = sparse(100, 3, 30);
        let run = RunImage::encode(&dense);
        let _ = RunImage::from_parts(100, run.mask().clone(), Vec::new());
    }
}
