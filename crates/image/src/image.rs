//! Row-major pixel image buffers.

use crate::kernel;
use crate::pixel::Pixel;
use crate::rect::Rect;

/// A row-major image of [`Pixel`]s.
///
/// Subimages in the sort-last system are full-size images whose pixels are
/// mostly blank; the compositing methods never copy more than the active
/// region thanks to bounding rectangles and run-length encoding.
///
/// The image maintains an incremental *bounds hint*: the exact tight
/// bounding rectangle of its non-blank pixels, kept up to date through
/// [`Image::set`] during local rendering and invalidated by raw mutable
/// access. When the hint is live, [`Image::bounding_rect`] is `O(1)` and
/// [`Image::bounding_rect_in`] scans only the hinted region — the
/// BSBR/BSLC/BSBRC stage setup becomes `O(runs)` instead of `O(W×H)`.
#[derive(Clone, Debug)]
pub struct Image {
    width: u16,
    height: u16,
    pixels: Vec<Pixel>,
    /// `Some(r)` ⇒ `r` is *exactly* the tight bounding rectangle of the
    /// non-blank pixels. `None` ⇒ unknown; fall back to scanning.
    bounds_hint: Option<Rect>,
}

/// Equality is over the pixel grid only; the bounds hint is a cache and
/// two images differing only in hint state compare equal.
impl PartialEq for Image {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.height == other.height && self.pixels == other.pixels
    }
}

impl Image {
    /// Creates a blank image.
    pub fn blank(width: u16, height: u16) -> Self {
        Image {
            width,
            height,
            pixels: vec![Pixel::BLANK; width as usize * height as usize],
            bounds_hint: Some(Rect::EMPTY),
        }
    }

    /// Creates an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u16, height: u16, mut f: impl FnMut(u16, u16) -> Pixel) -> Self {
        let mut pixels = Vec::with_capacity(width as usize * height as usize);
        let mut bounds = Rect::EMPTY;
        for y in 0..height {
            for x in 0..width {
                let p = f(x, y);
                if !p.is_blank() {
                    bounds.include(x, y);
                }
                pixels.push(p);
            }
        }
        Image {
            width,
            height,
            pixels,
            bounds_hint: Some(bounds),
        }
    }

    /// Wraps an existing pixel vector; panics if the length is wrong.
    pub fn from_pixels(width: u16, height: u16, pixels: Vec<Pixel>) -> Self {
        assert_eq!(pixels.len(), width as usize * height as usize);
        Image {
            width,
            height,
            pixels,
            bounds_hint: None,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total pixel count (the paper's `A`).
    #[inline]
    pub fn area(&self) -> usize {
        self.pixels.len()
    }

    /// The rectangle covering the whole image.
    #[inline]
    pub fn full_rect(&self) -> Rect {
        Rect::of_size(self.width, self.height)
    }

    /// Linear index of `(x, y)`.
    #[inline]
    pub fn index(&self, x: u16, y: u16) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Immutable pixel access.
    #[inline]
    pub fn get(&self, x: u16, y: u16) -> Pixel {
        self.pixels[self.index(x, y)]
    }

    /// Mutable pixel access. Invalidates the bounds hint (the write is
    /// not observable).
    #[inline]
    pub fn get_mut(&mut self, x: u16, y: u16) -> &mut Pixel {
        let i = self.index(x, y);
        self.bounds_hint = None;
        &mut self.pixels[i]
    }

    /// Sets a pixel, keeping the bounds hint exact: a non-blank write
    /// grows the hint; blanking a previously non-blank pixel may shrink
    /// the true bounds, so the hint is dropped.
    #[inline]
    pub fn set(&mut self, x: u16, y: u16, p: Pixel) {
        let i = self.index(x, y);
        if !p.is_blank() {
            if let Some(h) = &mut self.bounds_hint {
                h.include(x, y);
            }
        } else if !self.pixels[i].is_blank() {
            self.bounds_hint = None;
        }
        self.pixels[i] = p;
    }

    /// Flat pixel slice (row-major).
    #[inline]
    pub fn pixels(&self) -> &[Pixel] {
        &self.pixels
    }

    /// Flat mutable pixel slice (row-major). Invalidates the bounds hint.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Pixel] {
        self.bounds_hint = None;
        &mut self.pixels
    }

    /// One row's span of `len` pixels starting at `(x, y)`.
    #[inline]
    pub fn row_span(&self, x: u16, y: u16, len: usize) -> &[Pixel] {
        let i = self.index(x, y);
        debug_assert!(x as usize + len <= self.width as usize);
        &self.pixels[i..i + len]
    }

    /// Mutable row span. Invalidates the bounds hint.
    #[inline]
    pub fn row_span_mut(&mut self, x: u16, y: u16, len: usize) -> &mut [Pixel] {
        let i = self.index(x, y);
        debug_assert!(x as usize + len <= self.width as usize);
        self.bounds_hint = None;
        &mut self.pixels[i..i + len]
    }

    /// The current bounds hint, when live (exact tight bounds).
    #[inline]
    pub fn bounds_hint(&self) -> Option<Rect> {
        self.bounds_hint
    }

    /// Asserts a known-exact bounding rectangle, re-arming the `O(1)`
    /// [`Image::bounding_rect`] fast path after a merge whose output
    /// bounds the caller derived incrementally (union of the inputs).
    ///
    /// Debug builds verify the claim against a full scan.
    pub fn assert_bounds(&mut self, bounds: Rect) {
        debug_assert_eq!(
            bounds,
            self.scan_bounds(&self.full_rect()),
            "asserted bounds hint must match the scanned tight bounds"
        );
        self.bounds_hint = Some(bounds);
    }

    /// Number of non-blank pixels (the paper's `A_opaque` for a region
    /// equal to the whole image).
    pub fn non_blank_count(&self) -> usize {
        self.pixels.iter().filter(|p| !p.is_blank()).count()
    }

    /// Number of non-blank pixels inside `rect`.
    pub fn non_blank_count_in(&self, rect: &Rect) -> usize {
        rect.iter()
            .filter(|&(x, y)| !self.get(x, y).is_blank())
            .count()
    }

    /// Bounding rectangle of all non-blank pixels — `O(1)` when the
    /// incremental hint is live, otherwise the `O(A)` scan the paper
    /// charges as `T_bound` in the first BSBR/BSBRC stage.
    pub fn bounding_rect(&self) -> Rect {
        match self.bounds_hint {
            Some(h) => h,
            None => self.scan_bounds(&self.full_rect()),
        }
    }

    /// Bounding rectangle of the non-blank pixels inside `within`.
    ///
    /// With a live hint the scan is restricted to `hint ∩ within` (and
    /// skipped entirely when the hint lies inside `within`).
    pub fn bounding_rect_in(&self, within: &Rect) -> Rect {
        if within.is_empty() {
            return Rect::EMPTY;
        }
        match self.bounds_hint {
            Some(h) => {
                if within.contains_rect(&h) {
                    return h;
                }
                let clipped = h.intersect(within);
                if clipped.is_empty() {
                    return Rect::EMPTY;
                }
                self.scan_bounds(&clipped)
            }
            None => self.scan_bounds(within),
        }
    }

    /// The row-scan bounds search over `within`.
    fn scan_bounds(&self, within: &Rect) -> Rect {
        if within.is_empty() {
            return Rect::EMPTY;
        }
        let mut bounds = Rect::EMPTY;
        for y in within.y0..within.y1 {
            let row = &self.pixels
                [self.index(within.x0, y)..self.index(within.x0, y) + within.width() as usize];
            // Scan from both ends of the row to touch as few pixels as
            // possible once some bounds are known.
            if let Some(first) = row.iter().position(|p| !p.is_blank()) {
                let last = row.iter().rposition(|p| !p.is_blank()).unwrap();
                bounds.include(within.x0 + first as u16, y);
                bounds.include(within.x0 + last as u16, y);
            }
        }
        bounds
    }

    /// Copies the pixels of `rect` into a dense row-major buffer (BSBR's
    /// "pack pixels in the rectangle into a sending buffer").
    pub fn extract_rect(&self, rect: &Rect) -> Vec<Pixel> {
        let mut out = Vec::new();
        self.extract_rect_into(rect, &mut out);
        out
    }

    /// Like [`Image::extract_rect`], but reuses `out`'s allocation —
    /// the zero-allocation packing path for scratch buffers.
    pub fn extract_rect_into(&self, rect: &Rect, out: &mut Vec<Pixel>) {
        out.clear();
        out.reserve(rect.area());
        for y in rect.y0..rect.y1 {
            let start = self.index(rect.x0, y);
            out.extend_from_slice(&self.pixels[start..start + rect.width() as usize]);
        }
    }

    /// Overwrites the pixels of `rect` from a dense row-major buffer.
    pub fn write_rect(&mut self, rect: &Rect, data: &[Pixel]) {
        assert_eq!(data.len(), rect.area());
        self.bounds_hint = None;
        for (row_idx, y) in (rect.y0..rect.y1).enumerate() {
            let dst = self.index(rect.x0, y);
            let src = row_idx * rect.width() as usize;
            self.pixels[dst..dst + rect.width() as usize]
                .copy_from_slice(&data[src..src + rect.width() as usize]);
        }
    }

    /// Composites `front` (a dense buffer for `rect`) **over** the
    /// corresponding pixels of `self`, returning the number of `over`
    /// operations applied (the paper's computation count `T_o × A_rec`).
    pub fn composite_rect_over(&mut self, rect: &Rect, front: &[Pixel]) -> usize {
        assert_eq!(front.len(), rect.area());
        self.bounds_hint = None;
        let w = rect.width() as usize;
        for (row_idx, y) in (rect.y0..rect.y1).enumerate() {
            let dst = self.index(rect.x0, y);
            kernel::over_slice(&front[row_idx * w..][..w], &mut self.pixels[dst..dst + w]);
        }
        rect.area()
    }

    /// Composites `front` (a dense buffer for `rect`) **under** `self`,
    /// i.e. the local image stays in front.
    pub fn composite_rect_under(&mut self, rect: &Rect, back: &[Pixel]) -> usize {
        assert_eq!(back.len(), rect.area());
        self.bounds_hint = None;
        let w = rect.width() as usize;
        for (row_idx, y) in (rect.y0..rect.y1).enumerate() {
            let dst = self.index(rect.x0, y);
            kernel::under_slice(&mut self.pixels[dst..dst + w], &back[row_idx * w..][..w]);
        }
        rect.area()
    }

    /// Composites a whole `front` image over `self` (both full size) —
    /// the sequential reference path and the plain BS exchange step.
    pub fn composite_image_over(&mut self, front: &Image, region: &Rect) -> usize {
        assert_eq!((self.width, self.height), (front.width, front.height));
        self.bounds_hint = None;
        let w = region.width() as usize;
        for y in region.y0..region.y1 {
            let start = self.index(region.x0, y);
            kernel::over_slice(
                &front.pixels[start..start + w],
                &mut self.pixels[start..start + w],
            );
        }
        region.area()
    }

    /// Maximum per-channel absolute difference over all pixels.
    pub fn max_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        self.pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: u16, h: u16) -> Image {
        Image::from_fn(w, h, |x, y| {
            if (x + y) % 2 == 0 {
                Pixel::gray(0.5, 0.5)
            } else {
                Pixel::BLANK
            }
        })
    }

    #[test]
    fn blank_image_has_empty_bounds() {
        let img = Image::blank(16, 16);
        assert_eq!(img.bounding_rect(), Rect::EMPTY);
        assert_eq!(img.non_blank_count(), 0);
    }

    #[test]
    fn bounding_rect_tight() {
        let mut img = Image::blank(20, 10);
        img.set(3, 2, Pixel::gray(1.0, 1.0));
        img.set(15, 7, Pixel::gray(1.0, 1.0));
        assert_eq!(img.bounding_rect(), Rect::new(3, 2, 16, 8));
    }

    #[test]
    fn bounding_rect_within_subregion() {
        let mut img = Image::blank(20, 10);
        img.set(3, 2, Pixel::gray(1.0, 1.0));
        img.set(15, 7, Pixel::gray(1.0, 1.0));
        let left = Rect::new(0, 0, 10, 10);
        assert_eq!(img.bounding_rect_in(&left), Rect::new(3, 2, 4, 3));
        let right = Rect::new(10, 0, 20, 10);
        assert_eq!(img.bounding_rect_in(&right), Rect::new(15, 7, 16, 8));
    }

    #[test]
    fn hint_tracks_set_and_survives_clone() {
        let mut img = Image::blank(20, 10);
        assert_eq!(img.bounds_hint(), Some(Rect::EMPTY));
        img.set(3, 2, Pixel::gray(1.0, 1.0));
        img.set(15, 7, Pixel::gray(1.0, 1.0));
        assert_eq!(img.bounds_hint(), Some(Rect::new(3, 2, 16, 8)));
        let cloned = img.clone();
        assert_eq!(cloned.bounds_hint(), img.bounds_hint());
        // Blank writes over blank pixels keep the hint...
        img.set(0, 0, Pixel::BLANK);
        assert!(img.bounds_hint().is_some());
        // ...but blanking a non-blank pixel drops it, and the scan takes
        // over with the correct (shrunk) answer.
        img.set(15, 7, Pixel::BLANK);
        assert_eq!(img.bounds_hint(), None);
        assert_eq!(img.bounding_rect(), Rect::new(3, 2, 4, 3));
    }

    #[test]
    fn hint_matches_scan_for_from_fn() {
        let img = checker(13, 7);
        let hinted = img.bounding_rect();
        let mut unhinted = Image::from_pixels(13, 7, img.pixels().to_vec());
        assert_eq!(unhinted.bounds_hint(), None);
        assert_eq!(unhinted.bounding_rect(), hinted);
        // Raw mutable access invalidates.
        let img2 = {
            let mut i = checker(13, 7);
            i.pixels_mut();
            i
        };
        assert_eq!(img2.bounds_hint(), None);
        unhinted.get_mut(0, 0);
        assert_eq!(unhinted.bounds_hint(), None);
    }

    #[test]
    fn hinted_bounding_rect_in_matches_scan() {
        let img = checker(16, 16); // hint live, covers whole checker
        let plain = Image::from_pixels(16, 16, img.pixels().to_vec());
        for r in [
            Rect::new(0, 0, 8, 16),
            Rect::new(8, 0, 16, 16),
            Rect::new(3, 5, 11, 9),
            Rect::new(0, 0, 16, 16),
            Rect::EMPTY,
        ] {
            assert_eq!(img.bounding_rect_in(&r), plain.bounding_rect_in(&r));
        }
    }

    #[test]
    fn assert_bounds_rearms_fast_path() {
        let mut img = checker(8, 8);
        let bounds = img.bounding_rect();
        img.pixels_mut(); // invalidate
        assert_eq!(img.bounds_hint(), None);
        img.assert_bounds(bounds);
        assert_eq!(img.bounds_hint(), Some(bounds));
        assert_eq!(img.bounding_rect(), bounds);
    }

    #[test]
    fn extract_write_round_trip() {
        let img = checker(12, 9);
        let r = Rect::new(2, 1, 9, 6);
        let buf = img.extract_rect(&r);
        let mut reused = vec![Pixel::gray(9.0, 9.0); 3]; // stale contents
        img.extract_rect_into(&r, &mut reused);
        assert_eq!(buf, reused, "reused buffer must match fresh extraction");
        let mut dst = Image::blank(12, 9);
        dst.write_rect(&r, &buf);
        for (x, y) in r.iter() {
            assert_eq!(dst.get(x, y), img.get(x, y));
        }
        // Outside the rect stays blank.
        assert_eq!(dst.get(0, 0), Pixel::BLANK);
    }

    #[test]
    fn composite_rect_over_counts_ops() {
        let mut back = checker(8, 8);
        let r = Rect::new(0, 0, 4, 4);
        let front = vec![Pixel::gray(1.0, 1.0); r.area()];
        let ops = back.composite_rect_over(&r, &front);
        assert_eq!(ops, 16);
        assert_eq!(back.get(0, 0), Pixel::gray(1.0, 1.0));
        assert_eq!(back.get(3, 3), Pixel::gray(1.0, 1.0));
    }

    #[test]
    fn composite_under_keeps_local_front() {
        let mut local = Image::blank(4, 4);
        local.set(1, 1, Pixel::gray(0.5, 1.0)); // opaque local pixel
        let r = Rect::new(0, 0, 4, 4);
        let back = vec![Pixel::gray(1.0, 1.0); 16];
        local.composite_rect_under(&r, &back);
        // Local opaque pixel hides incoming back pixel.
        assert_eq!(local.get(1, 1), Pixel::gray(0.5, 1.0));
        // Blank local pixels show the back.
        assert_eq!(local.get(0, 0), Pixel::gray(1.0, 1.0));
    }

    #[test]
    fn composite_whole_images_matches_rect_path() {
        let front = checker(10, 10);
        let back = Image::from_fn(10, 10, |x, _| Pixel::gray(x as f32 / 10.0, 0.8));
        let mut a = back.clone();
        a.composite_image_over(&front, &back.full_rect());
        let mut b = back.clone();
        let buf = front.extract_rect(&front.full_rect());
        b.composite_rect_over(&front.full_rect(), &buf);
        assert_eq!(a, b);
    }

    #[test]
    fn row_spans_address_rows() {
        let img = checker(6, 4);
        assert_eq!(img.row_span(1, 2, 4), &img.pixels()[13..17]);
        let mut m = checker(6, 4);
        m.row_span_mut(0, 0, 6).fill(Pixel::BLANK);
        assert_eq!(m.bounds_hint(), None);
        assert_eq!(m.non_blank_count_in(&Rect::new(0, 0, 6, 1)), 0);
    }

    #[test]
    fn non_blank_counts() {
        let img = checker(4, 4);
        assert_eq!(img.non_blank_count(), 8);
        assert_eq!(img.non_blank_count_in(&Rect::new(0, 0, 2, 2)), 2);
    }

    #[test]
    #[should_panic]
    fn from_pixels_length_checked() {
        let _ = Image::from_pixels(4, 4, vec![Pixel::BLANK; 3]);
    }
}
