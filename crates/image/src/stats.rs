//! Image statistics: sparsity profiles and quality metrics used by the
//! evaluation harness and tests.

use crate::image::Image;
use crate::rect::Rect;

/// A sparsity profile of one subimage — the quantities that decide which
/// compositing method wins on it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparsityProfile {
    /// Total pixels (`A`).
    pub area: usize,
    /// Non-blank pixels (`A_opaque` over the whole frame).
    pub non_blank: usize,
    /// Bounding rectangle of the non-blank pixels.
    pub bounds: Rect,
    /// Non-blank density inside the bounding rectangle, in `[0, 1]`
    /// (the paper's dense/sparse classification).
    pub rect_density: f64,
    /// Fraction of the frame covered by the bounding rectangle.
    pub rect_coverage: f64,
    /// Number of blank/non-blank transitions along rows — proportional
    /// to the run codes mask-RLE would produce.
    pub row_transitions: usize,
}

/// Computes the sparsity profile of an image.
pub fn sparsity_profile(img: &Image) -> SparsityProfile {
    let bounds = img.bounding_rect();
    let non_blank = img.non_blank_count();
    let mut row_transitions = 0usize;
    for y in 0..img.height() {
        let mut prev = false;
        for x in 0..img.width() {
            let cur = !img.get(x, y).is_blank();
            if cur != prev {
                row_transitions += 1;
            }
            prev = cur;
        }
        if prev {
            row_transitions += 1; // close the final run
        }
    }
    SparsityProfile {
        area: img.area(),
        non_blank,
        bounds,
        rect_density: if bounds.area() > 0 {
            non_blank as f64 / bounds.area() as f64
        } else {
            0.0
        },
        rect_coverage: bounds.area() as f64 / img.area() as f64,
        row_transitions,
    }
}

/// Mean squared error over all channels of two equal-size images.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()));
    let mut acc = 0.0f64;
    for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
        let d = [pa.r - pb.r, pa.g - pb.g, pa.b - pb.b, pa.a - pb.a];
        acc += d.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
    }
    acc / (a.area() as f64 * 4.0)
}

/// Peak signal-to-noise ratio in dB (peak = 1.0); `f64::INFINITY` for
/// identical images.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * m.log10()
    }
}

/// A 16-bin histogram of non-blank pixel opacities.
pub fn alpha_histogram(img: &Image) -> [usize; 16] {
    let mut bins = [0usize; 16];
    for p in img.pixels() {
        if !p.is_blank() {
            let bin = ((p.a.clamp(0.0, 1.0) * 16.0) as usize).min(15);
            bins[bin] += 1;
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Pixel;

    fn half_filled() -> Image {
        Image::from_fn(16, 16, |x, _| {
            if x < 8 {
                Pixel::gray(0.5, 0.5)
            } else {
                Pixel::BLANK
            }
        })
    }

    #[test]
    fn profile_of_half_filled_image() {
        let p = sparsity_profile(&half_filled());
        assert_eq!(p.area, 256);
        assert_eq!(p.non_blank, 128);
        assert_eq!(p.bounds, Rect::new(0, 0, 8, 16));
        assert!((p.rect_density - 1.0).abs() < 1e-12);
        assert!((p.rect_coverage - 0.5).abs() < 1e-12);
        // One run per row → 2 transitions per row (enter + close).
        assert_eq!(p.row_transitions, 32);
    }

    #[test]
    fn profile_of_blank_image() {
        let p = sparsity_profile(&Image::blank(8, 8));
        assert_eq!(p.non_blank, 0);
        assert!(p.bounds.is_empty());
        assert_eq!(p.rect_density, 0.0);
        assert_eq!(p.row_transitions, 0);
    }

    #[test]
    fn checkerboard_has_max_transitions() {
        let img = Image::from_fn(8, 8, |x, y| {
            if (x + y) % 2 == 0 {
                Pixel::gray(1.0, 1.0)
            } else {
                Pixel::BLANK
            }
        });
        let p = sparsity_profile(&img);
        // Every pixel flips: 8 transitions + closing per row.
        assert!(p.row_transitions >= 8 * 8);
    }

    #[test]
    fn mse_and_psnr_basics() {
        let a = half_filled();
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        let b = Image::blank(16, 16);
        let m = mse(&a, &b);
        // 128 pixels differ by 0.5 in r,g,b,a of 256·4 channel samples.
        let expect = 128.0 * 4.0 * 0.25 / (256.0 * 4.0);
        assert!((m - expect).abs() < 1e-12);
        assert!(psnr(&a, &b) > 0.0 && psnr(&a, &b).is_finite());
    }

    #[test]
    fn alpha_histogram_bins() {
        let mut img = Image::blank(4, 1);
        img.set(0, 0, Pixel::gray(0.1, 0.05)); // bin 0
        img.set(1, 0, Pixel::gray(0.1, 0.5)); // bin 8
        img.set(2, 0, Pixel::gray(0.1, 1.0)); // bin 15 (clamped)
        let h = alpha_histogram(&img);
        assert_eq!(h[0], 1);
        assert_eq!(h[8], 1);
        assert_eq!(h[15], 1);
        assert_eq!(h.iter().sum::<usize>(), 3);
    }
}
