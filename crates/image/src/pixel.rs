//! The pixel model and the `over` compositing operator.
//!
//! The paper represents each pixel by *intensity and opacity* in 16 bytes
//! (Section 3.1). We use premultiplied RGBA with four `f32` components,
//! which is exactly 16 bytes and matches the coefficient `16 · A/2^k` in
//! the communication-cost equations (2), (4), (6) and (8).

use serde::{Deserialize, Serialize};

/// Size of one pixel on the wire, in bytes (four little-endian `f32`s).
pub const BYTES_PER_PIXEL: usize = 16;

/// A premultiplied-alpha RGBA pixel.
///
/// The color channels are *premultiplied* by opacity, which is the natural
/// output of front-to-back ray casting and makes [`Pixel::over`]
/// associative — the property that lets binary-swap composite subimages in
/// any tree order as long as each pairwise composite is oriented
/// front-over-back.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Pixel {
    /// Premultiplied red intensity in `[0, 1]`.
    pub r: f32,
    /// Premultiplied green intensity in `[0, 1]`.
    pub g: f32,
    /// Premultiplied blue intensity in `[0, 1]`.
    pub b: f32,
    /// Opacity in `[0, 1]`. Zero marks a *blank* (background) pixel.
    pub a: f32,
}

impl Pixel {
    /// The blank (background) pixel: fully transparent, zero intensity.
    pub const BLANK: Pixel = Pixel {
        r: 0.0,
        g: 0.0,
        b: 0.0,
        a: 0.0,
    };

    /// Creates a pixel from premultiplied components.
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32, a: f32) -> Self {
        Pixel { r, g, b, a }
    }

    /// Creates a gray pixel (the paper renders 8-bit gray-level images).
    #[inline]
    pub const fn gray(intensity: f32, a: f32) -> Self {
        Pixel {
            r: intensity,
            g: intensity,
            b: intensity,
            a,
        }
    }

    /// Creates an *unpremultiplied* pixel and premultiplies it.
    #[inline]
    pub fn from_straight(r: f32, g: f32, b: f32, a: f32) -> Self {
        Pixel {
            r: r * a,
            g: g * a,
            b: b * a,
            a,
        }
    }

    /// Whether this pixel is blank, i.e. carries no contribution.
    ///
    /// The sparse-merging methods (BSBR/BSLC/BSBRC) all classify pixels by
    /// this predicate: the renderer writes an exact `0.0` opacity wherever
    /// no ray sample contributed.
    #[inline]
    pub fn is_blank(&self) -> bool {
        self.a == 0.0 && self.r == 0.0 && self.g == 0.0 && self.b == 0.0
    }

    /// The `over` operator with `self` in *front* of `back`.
    ///
    /// With premultiplied colors: `out = front + (1 − αf) · back` for every
    /// channel including opacity. This is the per-pixel operation whose cost
    /// the paper denotes `T_o`.
    #[inline]
    pub fn over(self, back: Pixel) -> Pixel {
        let t = 1.0 - self.a;
        Pixel {
            r: self.r + t * back.r,
            g: self.g + t * back.g,
            b: self.b + t * back.b,
            a: self.a + t * back.a,
        }
    }

    /// In-place variant: `*self = front.over(*self)` where `self` is behind.
    #[inline]
    pub fn under_assign(&mut self, front: Pixel) {
        *self = front.over(*self);
    }

    /// Quantizes the gray intensity to 8 bits for PGM output.
    #[inline]
    pub fn luma_u8(&self) -> u8 {
        let y = 0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b;
        (y.clamp(0.0, 1.0) * 255.0).round() as u8
    }

    /// Serializes the pixel as 16 little-endian bytes.
    #[inline]
    pub fn to_le_bytes(self) -> [u8; BYTES_PER_PIXEL] {
        let mut out = [0u8; BYTES_PER_PIXEL];
        out[0..4].copy_from_slice(&self.r.to_le_bytes());
        out[4..8].copy_from_slice(&self.g.to_le_bytes());
        out[8..12].copy_from_slice(&self.b.to_le_bytes());
        out[12..16].copy_from_slice(&self.a.to_le_bytes());
        out
    }

    /// Deserializes a pixel from 16 little-endian bytes.
    #[inline]
    pub fn from_le_bytes(bytes: [u8; BYTES_PER_PIXEL]) -> Self {
        let f = |i: usize| f32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        Pixel {
            r: f(0),
            g: f(4),
            b: f(8),
            a: f(12),
        }
    }

    /// Component-wise maximum absolute difference, used by the correctness
    /// tests to compare distributed results against the sequential
    /// reference within floating-point tolerance.
    #[inline]
    pub fn max_abs_diff(&self, other: &Pixel) -> f32 {
        (self.r - other.r)
            .abs()
            .max((self.g - other.g).abs())
            .max((self.b - other.b).abs())
            .max((self.a - other.a).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Pixel>(), BYTES_PER_PIXEL);
    }

    #[test]
    fn blank_detection() {
        assert!(Pixel::BLANK.is_blank());
        assert!(!Pixel::gray(0.5, 0.5).is_blank());
        // Opacity zero but nonzero emission is not blank: it still
        // contributes under premultiplied `over`.
        assert!(!Pixel::new(0.1, 0.0, 0.0, 0.0).is_blank());
    }

    #[test]
    fn over_identity_with_blank_back() {
        let front = Pixel::from_straight(0.8, 0.4, 0.2, 0.6);
        assert_eq!(front.over(Pixel::BLANK), front);
    }

    #[test]
    fn over_identity_with_blank_front() {
        let back = Pixel::from_straight(0.8, 0.4, 0.2, 0.6);
        assert_eq!(Pixel::BLANK.over(back), back);
    }

    #[test]
    fn opaque_front_hides_back() {
        let front = Pixel::from_straight(0.3, 0.3, 0.3, 1.0);
        let back = Pixel::from_straight(0.9, 0.1, 0.5, 0.7);
        assert_eq!(front.over(back), front);
    }

    #[test]
    fn over_is_associative() {
        let a = Pixel::from_straight(0.2, 0.4, 0.6, 0.3);
        let b = Pixel::from_straight(0.9, 0.1, 0.5, 0.5);
        let c = Pixel::from_straight(0.4, 0.8, 0.2, 0.8);
        let left = a.over(b).over(c);
        let right = a.over(b.over(c));
        assert!(left.max_abs_diff(&right) < 1e-6, "{left:?} vs {right:?}");
    }

    #[test]
    fn over_accumulates_opacity() {
        let a = Pixel::from_straight(0.5, 0.5, 0.5, 0.5);
        let out = a.over(a);
        assert!((out.a - 0.75).abs() < 1e-6);
    }

    #[test]
    fn bytes_round_trip() {
        let p = Pixel::new(0.125, -1.5, 3.25, 0.75);
        assert_eq!(Pixel::from_le_bytes(p.to_le_bytes()), p);
    }

    #[test]
    fn luma_of_white_is_255() {
        assert_eq!(Pixel::new(1.0, 1.0, 1.0, 1.0).luma_u8(), 255);
        assert_eq!(Pixel::BLANK.luma_u8(), 0);
    }

    #[test]
    fn under_assign_matches_over() {
        let front = Pixel::from_straight(0.2, 0.3, 0.4, 0.5);
        let back = Pixel::from_straight(0.6, 0.7, 0.8, 0.9);
        let mut x = back;
        x.under_assign(front);
        assert_eq!(x, front.over(back));
    }
}
