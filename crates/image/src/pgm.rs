//! PGM/PPM image output for inspecting rendered and composited images
//! (regenerates the paper's Figure 7 test-sample gallery).

use crate::image::Image;
use std::io::{self, Write};
use std::path::Path;

/// Writes the image's 8-bit gray-level luma as binary PGM (P5).
pub fn write_pgm<W: Write>(img: &Image, mut w: W) -> io::Result<()> {
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let bytes: Vec<u8> = img.pixels().iter().map(|p| p.luma_u8()).collect();
    w.write_all(&bytes)
}

/// Writes the image as binary PPM (P6), RGB with straight-alpha over black.
pub fn write_ppm<W: Write>(img: &Image, mut w: W) -> io::Result<()> {
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut bytes = Vec::with_capacity(img.area() * 3);
    for p in img.pixels() {
        // Premultiplied over black background == the premultiplied color.
        bytes.push((p.r.clamp(0.0, 1.0) * 255.0).round() as u8);
        bytes.push((p.g.clamp(0.0, 1.0) * 255.0).round() as u8);
        bytes.push((p.b.clamp(0.0, 1.0) * 255.0).round() as u8);
    }
    w.write_all(&bytes)
}

/// Convenience: writes a PGM file at `path`.
pub fn save_pgm(img: &Image, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_pgm(img, io::BufWriter::new(f))
}

/// Convenience: writes a PPM file at `path`.
pub fn save_ppm(img: &Image, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_ppm(img, io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Pixel;

    #[test]
    fn pgm_header_and_payload() {
        let img = Image::from_fn(3, 2, |x, y| Pixel::gray((x + y) as f32 / 4.0, 1.0));
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(buf.len(), b"P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn ppm_payload_size() {
        let img = Image::blank(4, 4);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        assert_eq!(buf.len(), b"P6\n4 4\n255\n".len() + 48);
    }
}
