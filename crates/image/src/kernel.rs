//! Bulk span compositing kernels.
//!
//! The binary-swap decode loops composite contiguous spans of payload
//! pixels against contiguous spans of a local image row. Doing that one
//! [`Pixel::over`] call at a time through a cursor defeats
//! auto-vectorization; these kernels expose the same arithmetic over
//! flat slices so rustc unrolls and vectorizes the component math
//! (`Pixel` is `#[repr(C)]`, four `f32`s — SoA-friendly in row order).
//!
//! Bit-exactness contract: each element is computed by the *same*
//! [`Pixel::over`] expression, in the same left-to-right order, as the
//! scalar loops these kernels replaced. Conformance tests pin the
//! composited images to reference hashes, so any arithmetic reassociation
//! here would be caught immediately.

use crate::pixel::Pixel;
use crate::rle::RunSet;

/// Appends the non-blank runs of one contiguous pixel span to `table`,
/// positions offset by `base`.
///
/// The classification is exactly `!Pixel::is_blank` (`== 0.0` compares,
/// so `-0.0` still counts blank and NaN non-blank), but evaluated
/// branchlessly 16 pixels at a time into a bitmask — the compare loop
/// auto-vectorizes — and runs are then peeled off the mask with bit
/// scans. Runs touching a chunk (or caller-side row) seam coalesce via
/// [`RunSet::push`].
pub fn scan_runs_into(span: &[Pixel], base: usize, table: &mut RunSet) {
    const CHUNK: usize = 16;
    let mut x = 0usize;
    while x < span.len() {
        let lim = (span.len() - x).min(CHUNK);
        let mut bits: u32 = 0;
        for (i, p) in span[x..x + lim].iter().enumerate() {
            let nb = (p.a != 0.0) | (p.r != 0.0) | (p.g != 0.0) | (p.b != 0.0);
            bits |= (nb as u32) << i;
        }
        while bits != 0 {
            let s = bits.trailing_zeros() as usize;
            let len = (!(bits >> s)).trailing_zeros() as usize;
            table.push(base + x + s, len);
            bits &= !(((1u32 << len) - 1) << s);
        }
        x += lim;
    }
}

/// `back[i] = front[i] over back[i]` for every element.
///
/// The received-subimage-is-in-front direction of a binary-swap merge.
#[inline]
pub fn over_slice(front: &[Pixel], back: &mut [Pixel]) {
    assert_eq!(front.len(), back.len());
    for (b, f) in back.iter_mut().zip(front) {
        *b = f.over(*b);
    }
}

/// `local[i] = local[i] over back[i]` for every element.
///
/// The local-subimage-stays-in-front direction of a binary-swap merge.
#[inline]
pub fn under_slice(local: &mut [Pixel], back: &[Pixel]) {
    assert_eq!(local.len(), back.len());
    for (l, b) in local.iter_mut().zip(back) {
        *l = l.over(*b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(i: usize) -> Pixel {
        Pixel::from_straight(
            (i % 7) as f32 / 7.0,
            (i % 5) as f32 / 5.0,
            (i % 3) as f32 / 3.0,
            (i % 11) as f32 / 11.0,
        )
    }

    #[test]
    fn over_slice_matches_scalar_loop() {
        let front: Vec<Pixel> = (0..33).map(px).collect();
        let mut back: Vec<Pixel> = (0..33).map(|i| px(i + 13)).collect();
        let expect: Vec<Pixel> = front.iter().zip(&back).map(|(f, b)| f.over(*b)).collect();
        over_slice(&front, &mut back);
        assert_eq!(back, expect);
    }

    #[test]
    fn under_slice_matches_scalar_loop() {
        let back: Vec<Pixel> = (0..33).map(px).collect();
        let mut local: Vec<Pixel> = (0..33).map(|i| px(i + 29)).collect();
        let expect: Vec<Pixel> = local.iter().zip(&back).map(|(l, b)| l.over(*b)).collect();
        under_slice(&mut local, &back);
        assert_eq!(local, expect);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let front = vec![Pixel::BLANK; 3];
        let mut back = vec![Pixel::BLANK; 4];
        over_slice(&front, &mut back);
    }

    #[test]
    fn scan_runs_matches_is_blank_scan() {
        for (seed, density) in [(1u32, 0), (2, 15), (3, 55), (4, 100), (5, 97)] {
            let span: Vec<Pixel> = (0..777u32)
                .map(|i| {
                    if i.wrapping_mul(2_654_435_761).wrapping_add(seed * 97) % 100 < density {
                        px(i as usize + 1)
                    } else {
                        Pixel::BLANK
                    }
                })
                .collect();
            let mut table = RunSet::new();
            scan_runs_into(&span, 5, &mut table);
            let mut expect = RunSet::new();
            let mut i = 0usize;
            while i < span.len() {
                if span[i].is_blank() {
                    i += 1;
                    continue;
                }
                let s = i;
                while i < span.len() && !span[i].is_blank() {
                    i += 1;
                }
                expect.push(5 + s, i - s);
            }
            assert_eq!(table, expect, "seed {seed} density {density}");
        }
    }

    #[test]
    fn scan_runs_classifies_negative_zero_blank_and_nan_non_blank() {
        // `is_blank` uses `== 0.0`: -0.0 is blank, NaN is not. The
        // branchless classifier must agree exactly.
        let neg_zero = Pixel {
            r: -0.0,
            g: 0.0,
            b: -0.0,
            a: 0.0,
        };
        let nan = Pixel {
            r: 0.0,
            g: f32::NAN,
            b: 0.0,
            a: 0.0,
        };
        assert!(neg_zero.is_blank());
        assert!(!nan.is_blank());
        let span = [neg_zero, nan, neg_zero];
        let mut table = RunSet::new();
        scan_runs_into(&span, 0, &mut table);
        assert_eq!(table.runs(), &[(1, 1)]);
    }

    #[test]
    fn scan_runs_coalesces_across_chunk_seams() {
        // A run spanning the 16-pixel chunk boundary must come out as one
        // interval.
        let mut span = vec![Pixel::BLANK; 40];
        for p in &mut span[12..24] {
            *p = px(3);
        }
        let mut table = RunSet::new();
        scan_runs_into(&span, 100, &mut table);
        assert_eq!(table.runs(), &[(112, 12)]);
    }
}
