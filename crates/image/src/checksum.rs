//! Order-independent and order-dependent image digests for tests.

use crate::image::Image;

/// FNV-1a over the image's pixel bit patterns, row-major.
///
/// Bit-exact digest: two images compare equal iff every `f32` component has
/// an identical bit pattern. Used by tests that require the distributed
/// result to match the reference exactly (plain BS does, since it performs
/// the same float operations in the same order).
pub fn fnv1a(img: &Image) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bits: u32| {
        for byte in bits.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in img.pixels() {
        eat(p.r.to_bits());
        eat(p.g.to_bits());
        eat(p.b.to_bits());
        eat(p.a.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Pixel;

    #[test]
    fn identical_images_same_digest() {
        let a = Image::from_fn(8, 8, |x, y| Pixel::gray(x as f32 * 0.1 + y as f32, 0.5));
        let b = a.clone();
        assert_eq!(fnv1a(&a), fnv1a(&b));
    }

    #[test]
    fn single_pixel_change_changes_digest() {
        let a = Image::blank(8, 8);
        let mut b = a.clone();
        b.set(3, 3, Pixel::gray(0.001, 0.001));
        assert_ne!(fnv1a(&a), fnv1a(&b));
    }

    #[test]
    fn negative_zero_differs_from_zero() {
        // Bit-exactness is intentional: -0.0 != +0.0 at the bit level.
        let a = Image::blank(1, 1);
        let mut b = a.clone();
        b.set(0, 0, Pixel::new(-0.0, 0.0, 0.0, 0.0));
        assert_ne!(fnv1a(&a), fnv1a(&b));
    }
}
