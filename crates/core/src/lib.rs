//! The paper's contribution: efficient image compositing for the
//! sort-last-sparse parallel volume rendering system.
//!
//! Four binary-swap variants are implemented exactly as described in
//! Section 3:
//!
//! * [`Method::Bs`] — plain binary-swap (Ma et al.), the baseline: halves
//!   travel as full frames.
//! * [`Method::Bsbr`] — binary-swap with *bounding rectangles*: each
//!   stage ships an 8-byte rectangle header plus only the pixels inside
//!   the sending half's bounding rectangle.
//! * [`Method::Bslc`] — binary-swap with *run-length encoding* over
//!   blank/non-blank pixels and *static load balancing* via interleaved
//!   pixel sequences.
//! * [`Method::Bsbrc`] — bounding rectangle *and* RLE combined: RLE runs
//!   only over the sending bounding rectangle.
//!
//! Three related-work baselines round out the comparison surface:
//! [`Method::BinaryTree`] (Ahrens & Painter's compression-based tree
//! compositing with value RLE), [`Method::DirectSend`] (the buffered
//! case: every rank owns a static band and receives `P−1` messages), and
//! [`Method::Pipeline`] (parallel-pipeline compositing over depth-ordered
//! rings).
//!
//! ## Depth-position space
//!
//! `over` is associative but not commutative, so every pairwise composite
//! must know which operand is in front. All schedules here run in
//! *virtual rank* space: virtual rank `v` is the processor's position in
//! the front-to-back visibility order ([`vr_volume::DepthOrder`]).
//! Merged partial images then always cover *contiguous* depth intervals,
//! and orientation reduces to an integer comparison — lower virtual rank
//! is in front. The extension to non-power-of-two processor counts (the
//! paper's first future-work item) folds adjacent virtual pairs first,
//! which preserves that contiguity.

pub mod analysis;
pub mod conformance;
pub mod error;
pub mod gather;
pub mod methods;
pub mod reference;
pub mod schedule;
pub mod stats;
pub mod timer;
pub mod wire;

pub use analysis::{
    predict_bs, predict_from_stats, virtual_completion, Prediction, UniformWorkload,
};
pub use conformance::{
    expected_traffic, parse_corpus, run_case, ConformanceCase, ConformanceOutcome, CorpusEntry,
    CostKind, ExpectedTraffic, Workload,
};
pub use error::CompositeError;
pub use gather::{gather_image, gather_image_tolerant, GatheredImage};
pub use methods::{composite, CompositeResult, Method, OwnedPiece};
pub use reference::reference_composite;
pub use schedule::{fold_into_pow2, FoldOutcome, VirtualTopology};
pub use stats::{CompCost, MethodStats, StageStat};
pub use timer::Stopwatch;
