//! Message packing for the compositing protocols.
//!
//! Byte layout follows the paper's cost equations: bounding rectangles
//! are 8 bytes (4 × `u16`), run codes 2 bytes each, pixels 16 bytes each.
//! The only additions are explicit element-count prefixes (`u32`) where
//! the C/MPI original would have relied on `MPI_Get_count`; they add a
//! few bytes per message (≪ the 40 µs start-up cost) and are charged to
//! the byte counters like any other payload, so no method gains an
//! unaccounted advantage.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vr_image::{Pixel, Rect};

/// Pixels staged per bulk copy in [`MsgWriter::put_pixels`] (1 KiB of
/// stack).
const PIXEL_CHUNK: usize = 64;
/// Run codes staged per bulk copy in [`MsgWriter::put_codes`].
const CODE_CHUNK: usize = 256;

/// Incrementally builds a message payload.
#[derive(Debug, Default)]
pub struct MsgWriter {
    buf: BytesMut,
}

impl MsgWriter {
    /// An empty writer.
    pub fn new() -> Self {
        MsgWriter {
            buf: BytesMut::new(),
        }
    }

    /// A writer pre-sized for `bytes` of payload.
    pub fn with_capacity(bytes: usize) -> Self {
        MsgWriter {
            buf: BytesMut::with_capacity(bytes),
        }
    }

    /// Appends a bounding rectangle (8 bytes).
    pub fn put_rect(&mut self, r: Rect) {
        self.buf.put_slice(&r.to_le_bytes());
    }

    /// Appends a `u32` count.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends run codes (2 bytes each), staged through a stack buffer
    /// so the payload lands in bulk `put_slice` calls.
    pub fn put_codes(&mut self, codes: &[u16]) {
        self.buf.reserve(codes.len() * 2);
        let mut staged = [0u8; 2 * CODE_CHUNK];
        for chunk in codes.chunks(CODE_CHUNK) {
            for (slot, &c) in staged.chunks_exact_mut(2).zip(chunk) {
                slot.copy_from_slice(&c.to_le_bytes());
            }
            self.buf.put_slice(&staged[..chunk.len() * 2]);
        }
    }

    /// Appends pixels (16 bytes each) as contiguous byte-slice copies:
    /// pixels are serialized through a fixed stack buffer in chunks, so
    /// the cost is one `memcpy` per chunk rather than a `Vec` push per
    /// pixel. Byte layout is unchanged (`Pixel::to_le_bytes` each).
    pub fn put_pixels(&mut self, pixels: &[Pixel]) {
        self.buf.reserve(pixels.len() * vr_image::BYTES_PER_PIXEL);
        let mut staged = [0u8; vr_image::BYTES_PER_PIXEL * PIXEL_CHUNK];
        for chunk in pixels.chunks(PIXEL_CHUNK) {
            for (slot, p) in staged
                .chunks_exact_mut(vr_image::BYTES_PER_PIXEL)
                .zip(chunk)
            {
                slot.copy_from_slice(&p.to_le_bytes());
            }
            self.buf
                .put_slice(&staged[..chunk.len() * vr_image::BYTES_PER_PIXEL]);
        }
    }

    /// Appends a single pixel.
    pub fn put_pixel(&mut self, p: Pixel) {
        self.buf.put_slice(&p.to_le_bytes());
    }

    /// Appends raw bytes (bitmask payloads).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Current payload size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into an immutable payload.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads a message payload sequentially.
#[derive(Debug)]
pub struct MsgReader {
    buf: Bytes,
}

impl MsgReader {
    /// Wraps a received payload.
    pub fn new(buf: Bytes) -> Self {
        MsgReader { buf }
    }

    /// Reads a bounding rectangle.
    pub fn get_rect(&mut self) -> Rect {
        let mut raw = [0u8; 8];
        self.buf.copy_to_slice(&mut raw);
        Rect::from_le_bytes(raw)
    }

    /// Reads a `u32` count.
    pub fn get_u32(&mut self) -> u32 {
        self.buf.get_u32_le()
    }

    /// Reads `n` run codes.
    pub fn get_codes(&mut self, n: usize) -> Vec<u16> {
        let chunk = self.buf.chunk();
        assert!(chunk.len() >= n * 2, "short read: {n} codes", n = n);
        let out = chunk[..n * 2]
            .chunks_exact(2)
            .map(|b| u16::from_le_bytes([b[0], b[1]]))
            .collect();
        self.buf.advance(n * 2);
        out
    }

    /// Reads `n` pixels.
    pub fn get_pixels(&mut self, n: usize) -> Vec<Pixel> {
        let mut out = Vec::new();
        self.get_pixels_into(n, &mut out);
        out
    }

    /// Reads `n` pixels into a reusable buffer (cleared first), parsing
    /// the payload as one contiguous byte slice — the zero-allocation
    /// receive path for [`ScratchPool`] buffers.
    pub fn get_pixels_into(&mut self, n: usize, out: &mut Vec<Pixel>) {
        out.clear();
        out.reserve(n);
        let bytes = n * vr_image::BYTES_PER_PIXEL;
        let chunk = self.buf.chunk();
        assert!(chunk.len() >= bytes, "short read: {n} pixels");
        out.extend(
            chunk[..bytes]
                .chunks_exact(vr_image::BYTES_PER_PIXEL)
                .map(|raw| Pixel::from_le_bytes(raw.try_into().unwrap())),
        );
        self.buf.advance(bytes);
    }

    /// Reads a single pixel.
    pub fn get_pixel(&mut self) -> Pixel {
        let mut raw = [0u8; vr_image::BYTES_PER_PIXEL];
        self.buf.copy_to_slice(&mut raw);
        Pixel::from_le_bytes(raw)
    }

    /// Reads `n` raw bytes (bitmask payloads).
    pub fn get_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        out
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// Reusable per-rank staging buffers for the compositing schedule.
///
/// Every binary-swap stage packs an outgoing pixel payload and unpacks
/// an incoming one. Allocating fresh `Vec`s per stage costs an allocator
/// round-trip *per stage per rank*; the pool instead owns one send and
/// one receive buffer that grow to the high-water mark of the schedule
/// and are reused (`clear()`, never shrink) across stages.
///
/// The pool also records that high-water mark: `peak_bytes()` is the
/// peak resident staging footprint, surfaced per rank through
/// `TrafficStats::peak_pixel_buffer_bytes` so the absence of full-image
/// allocations is observable in reports.
///
/// Stale-data safety: both fill paths (`Image::extract_rect_into`,
/// `MsgReader::get_pixels_into`) clear before writing and the consumer
/// only reads the freshly written prefix, so a buffer can never leak
/// pixels from an earlier stage.
#[derive(Debug, Default)]
pub struct ScratchPool {
    /// Packing buffer for outgoing pixel payloads.
    pub send: Vec<Pixel>,
    /// Staging buffer for incoming pixel payloads.
    pub recv: Vec<Pixel>,
    peak: u64,
}

impl ScratchPool {
    /// An empty pool; buffers grow on first use.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Records the current resident footprint. Call once per stage,
    /// after the buffers are filled.
    pub fn note_watermark(&mut self) {
        let resident = (self.send.capacity() + self.recv.capacity()) * vr_image::BYTES_PER_PIXEL;
        self.peak = self.peak.max(resident as u64);
    }

    /// Peak resident staging bytes observed so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_payload() {
        let mut w = MsgWriter::new();
        let rect = Rect::new(1, 2, 300, 400);
        w.put_rect(rect);
        w.put_u32(3);
        w.put_codes(&[5, 0, 65535]);
        let px = [Pixel::gray(0.25, 0.5), Pixel::gray(1.0, 1.0)];
        w.put_pixels(&px);
        assert_eq!(w.len(), 8 + 4 + 6 + 32);

        let mut r = MsgReader::new(w.freeze());
        assert_eq!(r.get_rect(), rect);
        assert_eq!(r.get_u32(), 3);
        assert_eq!(r.get_codes(3), vec![5, 0, 65535]);
        assert_eq!(r.get_pixels(2), px.to_vec());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_message() {
        let w = MsgWriter::new();
        assert!(w.is_empty());
        let r = MsgReader::new(w.freeze());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn over_read_panics() {
        let mut r = MsgReader::new(Bytes::from_static(&[1, 2]));
        let _ = r.get_u32();
    }

    #[test]
    fn bulk_pixel_path_crosses_chunk_boundaries() {
        // More pixels than one staging chunk, with values that exercise
        // every byte of the encoding.
        let px: Vec<Pixel> = (0..PIXEL_CHUNK * 2 + 7)
            .map(|i| Pixel::from_straight(i as f32 * 0.01, 0.5, 1.0 - i as f32 * 0.001, 0.75))
            .collect();
        let codes: Vec<u16> = (0..CODE_CHUNK * 2 + 3).map(|i| i as u16).collect();
        let mut w = MsgWriter::new();
        w.put_codes(&codes);
        w.put_pixels(&px);
        assert_eq!(w.len(), codes.len() * 2 + px.len() * 16);
        let mut r = MsgReader::new(w.freeze());
        assert_eq!(r.get_codes(codes.len()), codes);
        assert_eq!(r.get_pixels(px.len()), px);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn get_pixels_into_clears_stale_contents() {
        let fresh = [Pixel::gray(0.25, 0.5), Pixel::gray(0.75, 1.0)];
        let mut w = MsgWriter::new();
        w.put_pixels(&fresh);
        let mut buf = vec![Pixel::gray(9.0, 9.0); 100]; // stale junk
        let mut r = MsgReader::new(w.freeze());
        r.get_pixels_into(2, &mut buf);
        assert_eq!(buf, fresh.to_vec(), "stale pixels must not survive");
    }

    #[test]
    fn scratch_pool_tracks_peak_watermark() {
        let mut pool = ScratchPool::new();
        assert_eq!(pool.peak_bytes(), 0);
        pool.send.resize(100, Pixel::BLANK);
        pool.note_watermark();
        let after_send = pool.peak_bytes();
        assert!(after_send >= 1600);
        pool.send.clear(); // reuse: capacity (and the peak) remain
        pool.recv.resize(50, Pixel::BLANK);
        pool.note_watermark();
        assert!(pool.peak_bytes() >= after_send + 800);
    }
}
