//! Message packing for the compositing protocols.
//!
//! Byte layout follows the paper's cost equations: bounding rectangles
//! are 8 bytes (4 × `u16`), run codes 2 bytes each, pixels 16 bytes each.
//! The only additions are explicit element-count prefixes (`u32`) where
//! the C/MPI original would have relied on `MPI_Get_count`; they add a
//! few bytes per message (≪ the 40 µs start-up cost) and are charged to
//! the byte counters like any other payload, so no method gains an
//! unaccounted advantage.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vr_image::{Pixel, Rect};

/// Incrementally builds a message payload.
#[derive(Debug, Default)]
pub struct MsgWriter {
    buf: BytesMut,
}

impl MsgWriter {
    /// An empty writer.
    pub fn new() -> Self {
        MsgWriter {
            buf: BytesMut::new(),
        }
    }

    /// A writer pre-sized for `bytes` of payload.
    pub fn with_capacity(bytes: usize) -> Self {
        MsgWriter {
            buf: BytesMut::with_capacity(bytes),
        }
    }

    /// Appends a bounding rectangle (8 bytes).
    pub fn put_rect(&mut self, r: Rect) {
        self.buf.put_slice(&r.to_le_bytes());
    }

    /// Appends a `u32` count.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends run codes (2 bytes each).
    pub fn put_codes(&mut self, codes: &[u16]) {
        for &c in codes {
            self.buf.put_u16_le(c);
        }
    }

    /// Appends pixels (16 bytes each).
    pub fn put_pixels(&mut self, pixels: &[Pixel]) {
        self.buf.reserve(pixels.len() * vr_image::BYTES_PER_PIXEL);
        for p in pixels {
            self.buf.put_slice(&p.to_le_bytes());
        }
    }

    /// Appends a single pixel.
    pub fn put_pixel(&mut self, p: Pixel) {
        self.buf.put_slice(&p.to_le_bytes());
    }

    /// Appends raw bytes (bitmask payloads).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Current payload size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into an immutable payload.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads a message payload sequentially.
#[derive(Debug)]
pub struct MsgReader {
    buf: Bytes,
}

impl MsgReader {
    /// Wraps a received payload.
    pub fn new(buf: Bytes) -> Self {
        MsgReader { buf }
    }

    /// Reads a bounding rectangle.
    pub fn get_rect(&mut self) -> Rect {
        let mut raw = [0u8; 8];
        self.buf.copy_to_slice(&mut raw);
        Rect::from_le_bytes(raw)
    }

    /// Reads a `u32` count.
    pub fn get_u32(&mut self) -> u32 {
        self.buf.get_u32_le()
    }

    /// Reads `n` run codes.
    pub fn get_codes(&mut self, n: usize) -> Vec<u16> {
        (0..n).map(|_| self.buf.get_u16_le()).collect()
    }

    /// Reads `n` pixels.
    pub fn get_pixels(&mut self, n: usize) -> Vec<Pixel> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_pixel());
        }
        out
    }

    /// Reads a single pixel.
    pub fn get_pixel(&mut self) -> Pixel {
        let mut raw = [0u8; vr_image::BYTES_PER_PIXEL];
        self.buf.copy_to_slice(&mut raw);
        Pixel::from_le_bytes(raw)
    }

    /// Reads `n` raw bytes (bitmask payloads).
    pub fn get_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        out
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_payload() {
        let mut w = MsgWriter::new();
        let rect = Rect::new(1, 2, 300, 400);
        w.put_rect(rect);
        w.put_u32(3);
        w.put_codes(&[5, 0, 65535]);
        let px = [Pixel::gray(0.25, 0.5), Pixel::gray(1.0, 1.0)];
        w.put_pixels(&px);
        assert_eq!(w.len(), 8 + 4 + 6 + 32);

        let mut r = MsgReader::new(w.freeze());
        assert_eq!(r.get_rect(), rect);
        assert_eq!(r.get_u32(), 3);
        assert_eq!(r.get_codes(3), vec![5, 0, 65535]);
        assert_eq!(r.get_pixels(2), px.to_vec());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_message() {
        let w = MsgWriter::new();
        assert!(w.is_empty());
        let r = MsgReader::new(w.freeze());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn over_read_panics() {
        let mut r = MsgReader::new(Bytes::from_static(&[1, 2]));
        let _ = r.get_u32();
    }
}
