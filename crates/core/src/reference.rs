//! Sequential reference compositor — the correctness oracle.

use vr_image::Image;
use vr_volume::DepthOrder;

/// Composites all subimages front-to-back sequentially with `over`.
///
/// Every distributed method must agree with this within floating-point
/// tolerance: `over` is associative, so any pairwise grouping that keeps
/// each group depth-contiguous and orients every composite front-over-
/// back computes the same expression in a different association order.
pub fn reference_composite(subimages: &[Image], depth: &DepthOrder) -> Image {
    assert!(!subimages.is_empty(), "need at least one subimage");
    assert_eq!(depth.front_to_back().len(), subimages.len());
    let w = subimages[0].width();
    let h = subimages[0].height();
    let mut acc = Image::blank(w, h);
    for &rank in depth.front_to_back() {
        let img = &subimages[rank];
        assert_eq!(
            (img.width(), img.height()),
            (w, h),
            "subimage sizes must match"
        );
        // acc currently holds everything in front of `img`; keep acc in
        // front: acc = acc over img.
        for (a, b) in acc.pixels_mut().iter_mut().zip(img.pixels()) {
            *a = a.over(*b);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_image::Pixel;

    #[test]
    fn single_image_is_identity() {
        let img = Image::from_fn(8, 8, |x, y| Pixel::gray((x + y) as f32 / 16.0, 0.5));
        let out = reference_composite(std::slice::from_ref(&img), &DepthOrder::identity(1));
        assert_eq!(out, img);
    }

    #[test]
    fn front_opaque_hides_back() {
        let front = Image::from_fn(4, 4, |_, _| Pixel::gray(0.3, 1.0));
        let back = Image::from_fn(4, 4, |_, _| Pixel::gray(0.9, 1.0));
        let out = reference_composite(&[front.clone(), back], &DepthOrder::identity(2));
        assert_eq!(out, front);
    }

    #[test]
    fn depth_order_controls_result() {
        let a = Image::from_fn(2, 2, |_, _| Pixel::gray(0.2, 1.0));
        let b = Image::from_fn(2, 2, |_, _| Pixel::gray(0.8, 1.0));
        let ab = reference_composite(&[a.clone(), b.clone()], &DepthOrder::identity(2));
        let ba = reference_composite(&[a, b], &DepthOrder::from_sequence(vec![1, 0]));
        assert_eq!(ab.get(0, 0).r, 0.2);
        assert_eq!(ba.get(0, 0).r, 0.8);
    }

    #[test]
    fn semi_transparent_layers_blend() {
        let a = Image::from_fn(1, 1, |_, _| Pixel::gray(0.5, 0.5));
        let out = reference_composite(&[a.clone(), a], &DepthOrder::identity(2));
        let p = out.get(0, 0);
        assert!((p.a - 0.75).abs() < 1e-6);
        assert!((p.r - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn empty_input_rejected() {
        let _ = reference_composite(&[], &DepthOrder::identity(0));
    }
}
