//! Closed-form cost analysis — the paper's Equations (1)–(8) as
//! executable predictions.
//!
//! Two layers are provided:
//!
//! * [`predict_bs`] and [`predict_from_stats`] are *exact*: plain
//!   binary-swap's per-stage byte counts are workload-independent, and
//!   any method's communication time is a deterministic function of its
//!   recorded per-stage bytes. Tests pin these against the simulator to
//!   the last bit.
//! * [`UniformWorkload`] estimates the workload-dependent quantities
//!   (`A_rec^k`, `A_opaque^k`, `R_code^k`) under a uniform-density
//!   model, yielding closed-form predictions for BSBR, BSLC and BSBRC
//!   that track the simulator's trends — a sanity instrument for the
//!   evaluation, not a replacement for it.

use vr_comm::CostModel;
use vr_image::{BYTES_PER_PIXEL, BYTES_PER_RUN_CODE};

use crate::stats::{CompCost, MethodStats};

/// A predicted cost split, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prediction {
    /// Predicted computation time (the paper's `T_comp`).
    pub comp_seconds: f64,
    /// Predicted communication time (the paper's `T_comm`).
    pub comm_seconds: f64,
}

impl Prediction {
    /// `T_total`.
    pub fn total_seconds(&self) -> f64 {
        self.comp_seconds + self.comm_seconds
    }
}

/// Equations (1) and (2): plain binary swap over an `A`-pixel image on
/// `P` (power-of-two) processors.
///
/// `T_comp(BS) = Σ_k (t_pack + t_unpack + t_over) · A/2^k` and
/// `T_comm(BS) = Σ_k (T_s + 16·A/2^k · T_c)`.
pub fn predict_bs(a: usize, p: usize, net: &CostModel, comp: &CompCost) -> Prediction {
    assert!(p.is_power_of_two() && p >= 1);
    let mut pred = Prediction::default();
    let mut half = a as f64 / 2.0;
    for _ in 0..p.trailing_zeros() {
        pred.comp_seconds += (comp.t_pack + comp.t_unpack + comp.t_over) * half;
        pred.comm_seconds += net.message_seconds((half * BYTES_PER_PIXEL as f64) as usize);
        half /= 2.0;
    }
    pred
}

/// Recomputes a rank's costs from its recorded per-stage counters —
/// the identity the whole measurement pipeline rests on.
pub fn predict_from_stats(stats: &MethodStats, net: &CostModel, comp: &CompCost) -> Prediction {
    Prediction {
        comp_seconds: comp.modeled_seconds(stats),
        comm_seconds: stats
            .stages
            .iter()
            .map(|s| net.message_seconds(s.recv_bytes as usize))
            .sum(),
    }
}

/// A uniform-density workload model: non-blank pixels cover fraction
/// `density` of the image and are spread uniformly inside a bounding
/// rectangle covering fraction `rect_fraction` of each exchanged
/// region.
#[derive(Clone, Copy, Debug)]
pub struct UniformWorkload {
    /// Image pixels (`A`).
    pub a: usize,
    /// Fraction of pixels that are non-blank, in `[0, 1]`.
    pub density: f64,
    /// Fraction of each region covered by the bounding rectangle.
    pub rect_fraction: f64,
    /// Expected run codes per encoded pixel (2·ρ·(1−ρ)-ish for random
    /// scatter; much lower for coherent content).
    pub codes_per_pixel: f64,
}

impl UniformWorkload {
    /// Equations (3)–(4): BSBR under the uniform model.
    pub fn predict_bsbr(&self, p: usize, net: &CostModel, comp: &CompCost) -> Prediction {
        assert!(p.is_power_of_two());
        let mut pred = Prediction::default();
        // T_bound: one full scan.
        pred.comp_seconds += comp.t_scan * self.a as f64;
        let mut half = self.a as f64 / 2.0;
        for _ in 0..p.trailing_zeros() {
            let rect = half * self.rect_fraction;
            pred.comp_seconds += (comp.t_pack + comp.t_unpack + comp.t_over) * rect;
            pred.comm_seconds += net.message_seconds(8 + (rect * BYTES_PER_PIXEL as f64) as usize);
            half /= 2.0;
        }
        pred
    }

    /// Equations (5)–(6): BSLC under the uniform model.
    ///
    /// Interleaving destroys spatial coherence, so BSLC's run codes are
    /// modeled at the random-mixing limit `2ρ(1−ρ)` codes per pixel
    /// regardless of how coherent the content is — the effect behind the
    /// paper's observation that "the BSLC method has more run-length
    /// code than the BSBRC method".
    pub fn predict_bslc(&self, p: usize, net: &CostModel, comp: &CompCost) -> Prediction {
        assert!(p.is_power_of_two());
        let mut pred = Prediction::default();
        let interleaved_cpp = 2.0 * self.density * (1.0 - self.density);
        let mut half = self.a as f64 / 2.0;
        for _ in 0..p.trailing_zeros() {
            let opaque = half * self.density;
            let codes = half * interleaved_cpp.max(self.codes_per_pixel);
            pred.comp_seconds +=
                comp.t_encode * half + (comp.t_pack + comp.t_unpack + comp.t_over) * opaque;
            pred.comm_seconds += net.message_seconds(
                4 + (codes * BYTES_PER_RUN_CODE as f64) as usize
                    + (opaque * BYTES_PER_PIXEL as f64) as usize,
            );
            half /= 2.0;
        }
        pred
    }

    /// Equations (7)–(8): BSBRC under the uniform model.
    pub fn predict_bsbrc(&self, p: usize, net: &CostModel, comp: &CompCost) -> Prediction {
        assert!(p.is_power_of_two());
        let mut pred = Prediction::default();
        pred.comp_seconds += comp.t_scan * self.a as f64;
        let mut half = self.a as f64 / 2.0;
        for _ in 0..p.trailing_zeros() {
            let a_send = half * self.rect_fraction;
            let opaque = half * self.density;
            let codes = a_send * self.codes_per_pixel;
            pred.comp_seconds +=
                comp.t_encode * a_send + (comp.t_pack + comp.t_unpack + comp.t_over) * opaque;
            pred.comm_seconds += net.message_seconds(
                8 + 4
                    + (codes * BYTES_PER_RUN_CODE as f64) as usize
                    + (opaque * BYTES_PER_PIXEL as f64) as usize,
            );
            half /= 2.0;
        }
        pred
    }

    /// Equation (9) under the uniform model: the two robust ordering
    /// links plus near-equality of the BSBRC/BSLC pair.
    ///
    /// A *uniform* workload has no spatial load imbalance, which is the
    /// very thing that puts `M_max(BSLC)` below `M_max(BSBRC)` in the
    /// paper's measurements; without it the two are within run-code
    /// noise of each other (the paper's own P = 2 caveat). The code
    /// overhead is bounded by `2·2ρ(1−ρ)` bytes against a `16ρ` payload,
    /// i.e. at most `(1−ρ)/4 ≤ 25%`, so the third component reports
    /// "within 25%" rather than `≥`.
    pub fn m_max_ordering(&self, p: usize, net: &CostModel, comp: &CompCost) -> (bool, bool, bool) {
        let bs = predict_bs(self.a, p, net, comp).comm_seconds;
        let bsbr = self.predict_bsbr(p, net, comp).comm_seconds;
        let bsbrc = self.predict_bsbrc(p, net, comp).comm_seconds;
        let bslc = self.predict_bslc(p, net, comp).comm_seconds;
        let near = (bsbrc - bslc).abs() <= 0.25 * bslc.max(bsbrc);
        // When the bounding rectangle degenerates to the full half, BSBR
        // equals BS plus its 8-byte headers, which Equation (9)'s model
        // does not charge.
        let header_slack = p.trailing_zeros() as f64 * 8.0 * net.t_c;
        (
            bs + header_slack >= bsbr,
            bsbr >= bsbrc,
            bsbrc >= bslc || near,
        )
    }
}

/// Reconstructs a **virtual-time schedule** from recorded per-stage
/// counters: each rank's completion time accounting for *waiting on its
/// partner*, not just its own work — a fidelity step beyond the paper's
/// per-processor sums (Equations (2)/(4)/(6)/(8) charge each rank only
/// for its own messages).
///
/// Supported for stage-paired schedules (the binary-swap family and the
/// binary tree): every stage must record its `peer`. Returns `None`
/// when any rank has a stage without a single peer (direct send,
/// pipeline) — their schedules are not pairwise.
///
/// Model per stage: a rank first computes its pre-send work (scan on
/// stage 0, encoding, packing), then its message becomes available at
/// `send_time + T_s + bytes·T_c`; it resumes at
/// `max(own send_time, partner's message arrival)` and performs its
/// post-receive work (unpacking, compositing). Ranks that stop early
/// (tree senders, folded ranks) simply stop advancing.
pub fn virtual_completion(
    per_rank: &[MethodStats],
    net: &CostModel,
    comp: &CompCost,
) -> Option<Vec<f64>> {
    let p = per_rank.len();
    let max_stages = per_rank.iter().map(|s| s.stages.len()).max()?;
    // Pre/post compute splits per rank per stage.
    let pre = |r: usize, k: usize| -> f64 {
        let s = &per_rank[r].stages[k];
        let scan = if k == 0 {
            comp.t_scan * per_rank[r].bound_pixels as f64
                + comp.t_encode * per_rank[r].pre_encoded_pixels as f64
        } else {
            0.0
        };
        scan + comp.t_encode * s.encoded_pixels as f64
            + comp.t_pack * (s.sent_bytes as f64 / vr_image::BYTES_PER_PIXEL as f64)
    };
    let post = |r: usize, k: usize| -> f64 {
        let s = &per_rank[r].stages[k];
        comp.t_unpack * (s.recv_bytes as f64 / vr_image::BYTES_PER_PIXEL as f64)
            + comp.t_over * s.composite_ops as f64
    };

    let mut vt = vec![0.0f64; p];
    for k in 0..max_stages {
        // First pass: everyone's message-available times for this stage.
        let mut avail = vec![f64::INFINITY; p];
        for r in 0..p {
            if k < per_rank[r].stages.len() {
                let send_time = vt[r] + pre(r, k);
                let sent = per_rank[r].stages[k].sent_bytes;
                avail[r] = if sent > 0 {
                    send_time + net.message_seconds(sent as usize)
                } else {
                    send_time
                };
            }
        }
        // Second pass: resume times after the exchange.
        for r in 0..p {
            if k >= per_rank[r].stages.len() {
                continue;
            }
            let stage = &per_rank[r].stages[k];
            let own_send = vt[r] + pre(r, k);
            let resume = if stage.recv_bytes > 0 {
                let peer = stage.peer? as usize;
                if peer >= p {
                    return None;
                }
                own_send.max(avail[peer])
            } else {
                own_send
            };
            vt[r] = resume + post(r, k);
        }
    }
    Some(vt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};
    use vr_image::{Image, Pixel};
    use vr_volume::DepthOrder;

    #[test]
    fn bs_prediction_matches_simulation_exactly() {
        let (p, size) = (8usize, 32u16);
        let a = size as usize * size as usize;
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        let images: Vec<Image> = (0..p)
            .map(|r| {
                Image::from_fn(size, size, |x, y| {
                    if (x + y * 3 + r as u16).is_multiple_of(7) {
                        Pixel::gray(0.4, 0.6)
                    } else {
                        Pixel::BLANK
                    }
                })
            })
            .collect();
        let depth = DepthOrder::identity(p);
        let out = run_group(p, net, |ep| {
            let mut img = images[ep.rank()].clone();
            crate::methods::composite(Method::Bs, ep, &mut img, &depth)
                .unwrap()
                .stats
        });
        let predicted = predict_bs(a, p, &net, &comp);
        for stats in &out.results {
            let from_stats = predict_from_stats(stats, &net, &comp);
            assert!((from_stats.comm_seconds - predicted.comm_seconds).abs() < 1e-12);
            assert!((from_stats.comm_seconds - stats.comm_seconds).abs() < 1e-12);
            assert!((from_stats.comp_seconds - predicted.comp_seconds).abs() < 1e-9);
        }
    }

    #[test]
    fn predict_from_stats_is_the_modeled_comp() {
        let stats = MethodStats {
            bound_pixels: 100,
            stages: vec![crate::stats::StageStat {
                sent_bytes: 160,
                recv_bytes: 320,
                composite_ops: 20,
                encoded_pixels: 50,
                ..Default::default()
            }],
            ..Default::default()
        };
        let comp = CompCost::power2();
        let net = CostModel::free();
        let pred = predict_from_stats(&stats, &net, &comp);
        assert!((pred.comp_seconds - comp.modeled_seconds(&stats)).abs() < 1e-15);
        assert_eq!(pred.comm_seconds, 0.0);
    }

    #[test]
    fn uniform_model_reproduces_equation_9_ordering() {
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        for density in [0.05, 0.2, 0.5] {
            let w = UniformWorkload {
                a: 384 * 384,
                density,
                rect_fraction: (density * 4.0).min(1.0),
                codes_per_pixel: 2.0 * density * (1.0 - density),
            };
            let (a, b, c) = w.m_max_ordering(16, &net, &comp);
            assert!(
                a && b && c,
                "ordering broken at density {density}: {a} {b} {c}"
            );
        }
    }

    #[test]
    fn sparse_workload_favors_bsbrc_over_bsbr() {
        // The Cube regime: large sparse rectangle.
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        let w = UniformWorkload {
            a: 384 * 384,
            density: 0.05,
            rect_fraction: 0.8,
            codes_per_pixel: 0.02,
        };
        let bsbr = w.predict_bsbr(16, &net, &comp);
        let bsbrc = w.predict_bsbrc(16, &net, &comp);
        assert!(bsbrc.total_seconds() < bsbr.total_seconds());
    }

    #[test]
    fn dense_workload_makes_bslc_comp_dominate() {
        // The paper's Table 1 story: BSLC's encode of the full half
        // dominates its total despite the smallest comm.
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        let w = UniformWorkload {
            a: 384 * 384,
            density: 0.35,
            rect_fraction: 0.5,
            codes_per_pixel: 0.05,
        };
        let bslc = w.predict_bslc(16, &net, &comp);
        let bsbrc = w.predict_bsbrc(16, &net, &comp);
        assert!(bslc.comp_seconds > bsbrc.comp_seconds);
        assert!(bslc.total_seconds() > bsbrc.total_seconds());
    }

    #[test]
    fn virtual_completion_bounds_per_rank_sums() {
        // Completion with waiting must be at least each rank's own
        // comp+comm sum, and at most the group-wide serial sum.
        let (p, size) = (8usize, 32u16);
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        let images: Vec<Image> = (0..p)
            .map(|r| {
                Image::from_fn(size, size, |x, y| {
                    if (x * 3 + y + r as u16 * 5).is_multiple_of(9) {
                        Pixel::gray(0.5, 0.5)
                    } else {
                        Pixel::BLANK
                    }
                })
            })
            .collect();
        let depth = DepthOrder::identity(p);
        for method in [Method::Bs, Method::Bsbrc, Method::BinaryTree] {
            let out = run_group(p, net, |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(method, ep, &mut img, &depth)
                    .unwrap()
                    .stats
            });
            let stats = out.results;
            let vt = virtual_completion(&stats, &net, &comp)
                .unwrap_or_else(|| panic!("{method:?} should support virtual time"));
            assert_eq!(vt.len(), p);
            let serial: f64 = stats
                .iter()
                .map(|s| comp.modeled_seconds(s) + s.comm_seconds)
                .sum();
            for (r, &t) in vt.iter().enumerate() {
                let own = comp.modeled_seconds(&stats[r]);
                assert!(
                    t >= own - 1e-12,
                    "{method:?} rank {r}: {t} < own work {own}"
                );
                assert!(
                    t <= serial + 1e-9,
                    "{method:?} rank {r}: {t} > serial {serial}"
                );
            }
        }
    }

    #[test]
    fn virtual_completion_rejects_multi_peer_schedules() {
        let (p, size) = (4usize, 16u16);
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        let images: Vec<Image> = (0..p)
            .map(|_| Image::from_fn(size, size, |_, _| Pixel::gray(0.5, 0.5)))
            .collect();
        let depth = DepthOrder::identity(p);
        let out = run_group(p, net, |ep| {
            let mut img = images[ep.rank()].clone();
            crate::methods::composite(Method::DirectSend, ep, &mut img, &depth)
                .unwrap()
                .stats
        });
        assert!(virtual_completion(&out.results, &net, &comp).is_none());
    }

    #[test]
    fn balanced_exchange_waits_for_the_slower_partner() {
        // Rank 1 has far more content → rank 0's completion includes
        // waiting for rank 1's bigger message.
        let net = CostModel {
            t_s: 1e-3,
            t_c: 1e-6,
        };
        let comp = CompCost::power2();
        let images = [
            Image::blank(32, 32),
            Image::from_fn(32, 32, |_, _| Pixel::gray(0.5, 0.5)),
        ];
        let depth = DepthOrder::identity(2);
        let out = run_group(2, net, |ep| {
            let mut img = images[ep.rank()].clone();
            crate::methods::composite(Method::Bsbrc, ep, &mut img, &depth)
                .unwrap()
                .stats
        });
        let vt = virtual_completion(&out.results, &net, &comp).unwrap();
        // Rank 0 received rank 1's dense half: its completion exceeds
        // its own tiny work by roughly the partner's encode+message.
        let own0 = comp.modeled_seconds(&out.results[0]);
        assert!(
            vt[0] > own0 + 1e-3,
            "rank 0 must wait on rank 1: {} vs {}",
            vt[0],
            own0
        );
    }

    #[test]
    fn bs_prediction_saturates_with_p() {
        let net = CostModel::sp2();
        let comp = CompCost::power2();
        let a = 384 * 384;
        let t2 = predict_bs(a, 2, &net, &comp).total_seconds();
        let t64 = predict_bs(a, 64, &net, &comp).total_seconds();
        // Σ A/2^k grows from A/2 towards A: less than 2× total growth.
        assert!(t64 > t2 && t64 < 2.2 * t2, "t2={t2}, t64={t64}");
    }
}
