//! Buffered direct-send compositing — the Hsu / Neumann related-work
//! baseline (the "buffered case" of Section 2).
//!
//! Every virtual rank statically owns one horizontal band of the final
//! image. Each rank sends, to every other rank, the dense pixels of that
//! rank's band — `P−1` sends and `P−1` receives per rank, all at once —
//! then folds the `P` contributions for its own band front-to-back.

use vr_comm::Endpoint;
use vr_image::{Image, Pixel};
use vr_volume::DepthOrder;

use crate::error::{try_recv, try_send, CompositeError};
use crate::schedule::{tags, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{band_rect, CompositeResult, OwnedPiece, Run};

/// Runs direct-send compositing (any `P ≥ 1`).
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let v = topo.vrank();
    let p = topo.vsize();
    let my_band = band_rect(image.width(), image.height(), v, p);

    if p == 1 {
        return Ok(run.finish(ep, OwnedPiece::Rect(my_band)));
    }

    // Send every other rank its band from our subimage.
    let mut stat = StageStat::default();
    for dst in 0..p {
        if dst == v {
            continue;
        }
        let band = band_rect(image.width(), image.height(), dst, p);
        let payload = run.comp.time(|| {
            let mut w = MsgWriter::with_capacity(band.area() * vr_image::BYTES_PER_PIXEL);
            w.put_pixels(&image.extract_rect(&band));
            w.freeze()
        });
        let len = payload.len() as u64;
        if try_send(
            ep,
            topo.real(dst),
            tags::DIRECT,
            payload,
            &mut run.dead,
            "direct send",
        )? {
            stat.sent_bytes += len;
            stat.sent_msgs += 1;
        }
    }

    // Receive the P−1 contributions for our band and fold front-to-back.
    // `contributions[u]` is virtual rank u's band image (ours included);
    // a dead contributor's slot stays `None` and is simply skipped.
    let mut contributions: Vec<Option<Vec<Pixel>>> = (0..p).map(|_| None).collect();
    contributions[v] = Some(image.extract_rect(&my_band));
    for (src, slot) in contributions.iter_mut().enumerate() {
        if src == v {
            continue;
        }
        let Some(received) = try_recv(
            ep,
            topo.real(src),
            tags::DIRECT,
            &mut run.dead,
            "direct recv",
        )?
        else {
            continue;
        };
        stat.recv_bytes += received.len() as u64;
        stat.recv_msgs += 1;
        let pixels = run
            .comp
            .time(|| MsgReader::new(received).get_pixels(my_band.area()));
        *slot = Some(pixels);
    }

    run.comp.time(|| {
        let mut acc = vec![Pixel::BLANK; my_band.area()];
        let mut ops = 0u64;
        for c in contributions.into_iter().flatten() {
            // acc holds everything in front so far.
            for (a, b) in acc.iter_mut().zip(&c) {
                *a = a.over(*b);
                ops += 1;
            }
        }
        image.write_rect(&my_band, &acc);
        stat.composite_ops = ops;
    });

    run.stages.push(stat);
    Ok(run.finish(ep, OwnedPiece::Rect(my_band)))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_against_reference;
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn direct_send_matches_reference() {
        for p in [2, 3, 4, 7, 8] {
            check_against_reference(Method::DirectSend, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn direct_send_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![4, 2, 0, 3, 1]);
        check_against_reference(Method::DirectSend, 5, 25, 30, &depth);
    }

    #[test]
    fn each_rank_sends_p_minus_1_messages() {
        let p = 6;
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(12, 12);
            let _ = run(ep, &mut img, &depth);
            (ep.stats().sent_messages, ep.stats().recv_messages)
        });
        for &(sent, recvd) in &out.results {
            // P−1 direct sends (+ gather happens outside this test).
            assert_eq!(sent, (p - 1) as u64);
            assert_eq!(recvd, (p - 1) as u64);
        }
    }

    #[test]
    fn bands_are_owned_by_virtual_rank() {
        let depth = DepthOrder::from_sequence(vec![1, 0]);
        let out = run_group(2, CostModel::free(), |ep| {
            let mut img = Image::blank(8, 8);
            run(ep, &mut img, &depth).unwrap().piece
        });
        // Real rank 1 is virtual 0 → top band; real rank 0 → bottom.
        assert_eq!(
            out.results[1],
            OwnedPiece::Rect(vr_image::Rect::new(0, 0, 8, 4))
        );
        assert_eq!(
            out.results[0],
            OwnedPiece::Rect(vr_image::Rect::new(0, 4, 8, 8))
        );
    }
}
