//! Binary-swap with run-length encoding and static load balancing (BSLC)
//! — Section 3.3.
//!
//! Instead of a spatial half, each stage exchanges an **interleaved**
//! half of the currently owned pixel sequence (Figure 6), so non-blank
//! pixels spread almost evenly across both partners regardless of where
//! the object projects. The sent half is run-length encoded over the
//! blank/non-blank mask (Figure 5): 2-byte run codes plus only the
//! non-blank pixel payload travel (Equation (6)).
//!
//! The price is the encoding scan itself: `T_encode · A/2^k` per stage
//! (Equation (5)), which iterates the *whole* sent half, blank pixels
//! included. The paper's evaluation shows exactly this term dominating
//! `T_comp(BSLC)` — the motivation for BSBRC.
//!
//! This implementation keeps the paper's cost accounting (the
//! `encoded_pixels` counter still charges the full sent half per stage)
//! but *executes* the encoding incrementally: the blank/non-blank run
//! table is built once from the initial image (restricted to its
//! bounding rectangle) and thereafter maintained structurally —
//! [`MaskRle::split_parity`] derives each stage's sent-half codes and
//! [`MaskRle::union`] folds in the received runs — so per-stage setup is
//! `O(runs)` instead of `O(A/2^k)`, and the wire bytes are bit-identical
//! to a dense rescan.

use vr_comm::Endpoint;
use vr_image::{kernel, Image, MaskRle, RunSet, StridedSeq};
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs BSLC. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    let mut seq = StridedSeq::dense(image.area());
    // The one pixel scan: the sequence's run table, built inside the
    // image's bounding rectangle (everything outside is blank). From here
    // on the table is maintained structurally, never rescanned. All the
    // working tables and the wire-code buffer persist across stages, so
    // the stage loop allocates nothing in steady state.
    let mut mask = run.encode.time(|| sequence_mask(image));
    let (mut even_buf, mut odd_buf) = (RunSet::new(), RunSet::new());
    let mut recv_set = RunSet::new();
    let mut codes_buf: Vec<u16> = Vec::new();
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        let (even, odd) = seq.split();
        run.encode
            .time(|| mask.split_parity_into(&mut even_buf, &mut odd_buf));
        let (keep, send, keep_mask, send_mask) = if topo.keeps_low(stage) {
            (even, odd, &even_buf, &odd_buf)
        } else {
            (odd, even, &odd_buf, &even_buf)
        };

        // Encode the interleaved sent half: the run codes come straight
        // from the parity split (bit-identical to a dense rescan); only
        // the non-blank pixels are gathered, into the reusable scratch
        // buffer, so the wire write is one bulk copy.
        let scratch = &mut run.scratch;
        let payload = run.encode.time(|| {
            send_mask.encode_codes_into(send.count, &mut codes_buf);
            let total = send_mask.non_blank_total();
            let pixels = image.pixels();
            scratch.send.clear();
            scratch.send.reserve(total);
            for &(start, len) in send_mask.runs() {
                let mut idx = send.index(start);
                for _ in 0..len {
                    scratch.send.push(pixels[idx]);
                    idx += send.stride;
                }
            }
            let mut w = MsgWriter::with_capacity(
                4 + codes_buf.len() * vr_image::BYTES_PER_RUN_CODE
                    + total * vr_image::BYTES_PER_PIXEL,
            );
            w.put_u32(codes_buf.len() as u32);
            w.put_codes(&codes_buf);
            w.put_pixels(&scratch.send);
            w.freeze()
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            encoded_pixels: send.count as u64,
            run_codes: codes_buf.len() as u64,
            ..Default::default()
        };

        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSLC stage",
        )?;

        // Composite only the received non-blank pixels, addressed through
        // the run codes over *our kept sequence* (identical to the
        // partner's sent sequence by construction). A dead partner
        // contributes nothing.
        if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            let scratch = &mut run.scratch;
            let recv = &mut recv_set;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let ncodes = r.get_u32() as usize;
                let rle = MaskRle::from_codes(r.get_codes(ncodes));
                recv.assign_from_runs(rle.non_blank_runs());
                // One bulk parse of the pixel payload; the scatter below
                // reads it sequentially, so arithmetic order is unchanged.
                r.get_pixels_into(recv.non_blank_total(), &mut scratch.recv);
                let front = topo.received_is_front(vpartner);
                let mut ops = 0u64;
                let mut src = 0usize;
                let pixels = image.pixels_mut();
                for &(start, len) in recv.runs() {
                    let mut idx = keep.index(start);
                    for _ in 0..len {
                        let incoming = scratch.recv[src];
                        src += 1;
                        let local = &mut pixels[idx];
                        *local = if front {
                            incoming.over(*local)
                        } else {
                            local.over(incoming)
                        };
                        idx += keep.stride;
                    }
                    ops += len as u64;
                }
                stat.composite_ops = ops;
            });
            // `over` never blanks a non-blank pixel, so the merged half's
            // exact run table is the union — no rescan.
            run.encode
                .time(|| keep_mask.union_into(&recv_set, &mut mask));
        } else {
            mask.assign(keep_mask);
        }
        run.scratch.note_watermark();

        seq = keep;
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Seq(seq)))
}

/// The blank/non-blank run table of the image's full pixel sequence,
/// scanned only inside its bounding rectangle (`O(1)` to obtain when the
/// bounds hint is armed; positions outside are blank by definition), so
/// a sparse image pays `O(bounds.area())` instead of `O(A)`.
fn sequence_mask(image: &Image) -> RunSet {
    let b = image.bounding_rect();
    let w = image.width() as usize;
    let pixels = image.pixels();
    // `RunSet::push` (inside the scanner) coalesces runs touching across
    // the row seam.
    let mut table = RunSet::new();
    for y in b.y0..b.y1 {
        let start = y as usize * w + b.x0 as usize;
        let end = y as usize * w + b.x1 as usize;
        kernel::scan_runs_into(&pixels[start..end], start, &mut table);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};
    use vr_image::Pixel;

    #[test]
    fn bslc_matches_reference_pow2() {
        for p in [2, 4, 8, 16] {
            check_against_reference(Method::Bslc, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bslc_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![2, 6, 0, 4, 1, 5, 3, 7]);
        check_against_reference(Method::Bslc, 8, 36, 28, &depth);
    }

    #[test]
    fn bslc_matches_reference_non_pow2() {
        for p in [3, 5, 6] {
            check_against_reference(Method::Bslc, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bslc_sends_only_non_blank_payload() {
        // Fully blank images → payload is just the 4-byte code count.
        let p = 2;
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(16, 16);
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            assert_eq!(stats.stages[0].sent_bytes, 4);
            assert_eq!(stats.stages[0].run_codes, 0);
        }
    }

    #[test]
    fn bslc_balances_load_on_clustered_content() {
        // All non-blank pixels live in the left half of rank 0's image —
        // the worst case for spatial splitting. With interleaving, both
        // partners still receive nearly equal non-blank counts.
        let p = 2;
        let (w, h) = (32u16, 32u16);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(w, h);
            if ep.rank() == 0 {
                for y in 0..h {
                    for x in 0..w / 2 {
                        img.set(x, y, Pixel::gray(0.6, 0.7));
                    }
                }
            }
            run(ep, &mut img, &depth).unwrap().stats
        });
        let r0 = out.results[0].stages[0].recv_bytes;
        let r1 = out.results[1].stages[0].recv_bytes;
        // Rank 0 receives nothing of substance (rank 1 blank); rank 1
        // receives about half of rank 0's non-blank pixels.
        assert!(r0 <= 8);
        let half_payload = (w as u64 / 2 * h as u64 / 2) * 16;
        assert!(
            r1 > half_payload * 9 / 10 && r1 < half_payload * 12 / 10,
            "interleave should hand ~half the content to the partner: {r1} vs {half_payload}"
        );
    }

    #[test]
    fn bslc_encoded_pixels_match_equation_5() {
        // Stage k encodes A/2^k pixels (the sent half).
        let p = 8;
        let (w, h) = (32u16, 32u16);
        let a = w as u64 * h as u64;
        let images = test_images(p, w, h);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            for (k, stage) in stats.stages.iter().enumerate() {
                assert_eq!(
                    stage.encoded_pixels,
                    a / 2u64.pow(k as u32 + 1),
                    "stage {k}"
                );
            }
        }
    }

    #[test]
    fn bslc_final_seqs_partition_pixels() {
        let p = 8;
        let images = test_images(p, 16, 16);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().piece
        });
        let mut all: Vec<usize> = Vec::new();
        for piece in &out.results {
            match piece {
                OwnedPiece::Seq(s) => all.extend(s.iter()),
                other => panic!("unexpected piece {other:?}"),
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..256).collect::<Vec<_>>());
    }
}
