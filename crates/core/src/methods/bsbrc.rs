//! Binary-swap with bounding rectangle *and* run-length encoding (BSBRC)
//! — Section 3.4, the paper's best method.
//!
//! BSBRC fixes both parents' weaknesses: unlike BSLC it only iterates
//! (and encodes) the pixels inside the sending half's bounding rectangle
//! (`T_encode · A_send^k`, Equation (7)); unlike BSBR it ships only the
//! non-blank pixels inside that rectangle (8-byte header + 2-byte run
//! codes + 16-byte pixels, Equation (8)).

use vr_comm::Endpoint;
use vr_image::{kernel, Image, MaskRle, RunSet};
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs BSBRC. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    // Algorithm lines 2–4: the single O(A) scan for the local bounding
    // rectangle.
    run.bound_pixels += image.area() as u64;
    let mut local_bounds = run.bound.time(|| image.bounding_rect());

    let mut splitter = RegionSplitter::new(image.full_rect());
    // Reused across stages: the send-rect run table and its wire codes.
    let mut send_set = RunSet::new();
    let mut codes_buf: Vec<u16> = Vec::new();
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        // Line 6: the subimage centerline divides the local bounding
        // rectangle into new-local and sending bounding rectangles.
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));
        let send_bounds = local_bounds.intersect(&send);
        let keep_bounds = local_bounds.intersect(&keep);

        // Lines 7–12: RLE over the sending bounding rectangle only: one
        // branchless run scan per rect row (positions rect-relative, the
        // same row-major order `encode_mask` walks, so the canonical
        // codes are bit-identical). Runs are decomposed into row segments
        // so the packed payload is built from bulk row-slice copies into
        // the reusable scratch buffer.
        let scratch = &mut run.scratch;
        let send_set = &mut send_set;
        let codes_buf = &mut codes_buf;
        let (payload, ncodes) = run.encode.time(|| {
            let mut w = MsgWriter::with_capacity(8 + 4 + send_bounds.area());
            w.put_rect(send_bounds);
            let mut ncodes = 0u64;
            if !send_bounds.is_empty() {
                let row_w = send_bounds.width() as usize;
                send_set.clear();
                for y in send_bounds.y0..send_bounds.y1 {
                    let base = (y - send_bounds.y0) as usize * row_w;
                    let row = image.row_span(send_bounds.x0, y, row_w);
                    kernel::scan_runs_into(row, base, send_set);
                }
                send_set.encode_codes_into(send_bounds.area(), codes_buf);
                ncodes = codes_buf.len() as u64;
                w.put_u32(codes_buf.len() as u32);
                w.put_codes(codes_buf);
                scratch.send.clear();
                scratch.send.reserve(send_set.non_blank_total());
                for &(start, len) in send_set.runs() {
                    let (mut pos, mut rem) = (start, len);
                    while rem > 0 {
                        let col = pos % row_w;
                        let seg = rem.min(row_w - col);
                        let x = send_bounds.x0 + col as u16;
                        let y = send_bounds.y0 + (pos / row_w) as u16;
                        scratch.send.extend_from_slice(image.row_span(x, y, seg));
                        pos += seg;
                        rem -= seg;
                    }
                }
                w.put_pixels(&scratch.send);
            }
            (w.freeze(), ncodes)
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            encoded_pixels: send_bounds.area() as u64,
            run_codes: ncodes,
            ..Default::default()
        };

        // Lines 13–14: the exchange (always happens; an empty rectangle
        // is an 8-byte header). A dead partner contributes nothing.
        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSBRC stage",
        )?;

        // Lines 15–20: unpack and composite only the non-blank pixels.
        // The payload is parsed in one bulk pass, then each run is merged
        // row segment by row segment through the slice kernels — the same
        // `over` arithmetic in the same left-to-right order as the scalar
        // loop, so the output is bit-identical.
        let recv_rect = if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            let scratch = &mut run.scratch;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let rect = r.get_rect();
                stat.recv_rect_empty = rect.is_empty();
                if !rect.is_empty() {
                    debug_assert!(keep.contains_rect(&rect));
                    let ncodes = r.get_u32() as usize;
                    let rle = MaskRle::from_codes(r.get_codes(ncodes));
                    r.get_pixels_into(rle.non_blank_total(), &mut scratch.recv);
                    let front = topo.received_is_front(vpartner);
                    let row_w = rect.width() as usize;
                    let mut ops = 0u64;
                    let mut src = 0usize;
                    for (start, len) in rle.non_blank_runs() {
                        let (mut pos, mut rem) = (start, len);
                        while rem > 0 {
                            let col = pos % row_w;
                            let seg = rem.min(row_w - col);
                            let x = rect.x0 + col as u16;
                            let y = rect.y0 + (pos / row_w) as u16;
                            let incoming = &scratch.recv[src..src + seg];
                            let local = image.row_span_mut(x, y, seg);
                            if front {
                                kernel::over_slice(incoming, local);
                            } else {
                                kernel::under_slice(local, incoming);
                            }
                            src += seg;
                            pos += seg;
                            rem -= seg;
                        }
                        ops += len as u64;
                    }
                    stat.composite_ops = ops;
                }
                rect
            })
        } else {
            stat.recv_rect_empty = true;
            vr_image::Rect::EMPTY
        };
        // Line 21: merge rectangles for the next stage.
        local_bounds = keep_bounds.union(&recv_rect);
        run.scratch.note_watermark();
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};
    use vr_image::Pixel;

    #[test]
    fn bsbrc_matches_reference_pow2() {
        for p in [2, 4, 8, 16, 32] {
            check_against_reference(Method::Bsbrc, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbrc_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![7, 3, 5, 1, 6, 2, 4, 0]);
        check_against_reference(Method::Bsbrc, 8, 40, 32, &depth);
    }

    #[test]
    fn bsbrc_matches_reference_non_pow2() {
        for p in [3, 5, 6, 7, 12] {
            check_against_reference(Method::Bsbrc, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbrc_never_sends_more_pixels_than_bsbr() {
        // BSBRC payload = header + codes + non-blank pixels; BSBR payload
        // = header + all rect pixels. On any input the non-blank pixel
        // bytes are a subset; codes may add a little, but for sparse
        // rects BSBRC must win clearly.
        let p = 8;
        let images = test_images(p, 48, 48);
        let depth = DepthOrder::identity(p);
        let total = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .sent_bytes()
            })
            .results
            .iter()
            .sum::<u64>()
        };
        let bsbr = total(Method::Bsbr);
        let bsbrc = total(Method::Bsbrc);
        assert!(
            bsbrc < bsbr,
            "BSBRC {bsbrc} should undercut BSBR {bsbr} on sparse images"
        );
    }

    #[test]
    fn bsbrc_encodes_fewer_pixels_than_bslc() {
        // Equation (7) vs (5): BSBRC encodes A_send^k ≤ A/2^k.
        let p = 8;
        let images = test_images(p, 48, 48);
        let depth = DepthOrder::identity(p);
        let encoded = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                let stats = crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats;
                stats.stages.iter().map(|s| s.encoded_pixels).sum::<u64>()
            })
            .results
            .iter()
            .sum::<u64>()
        };
        let bslc = encoded(Method::Bslc);
        let bsbrc = encoded(Method::Bsbrc);
        assert!(bsbrc <= bslc, "BSBRC encodes {bsbrc} > BSLC {bslc}");
    }

    #[test]
    fn bsbrc_empty_rect_is_header_only() {
        let p = 2;
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(16, 16);
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            assert_eq!(stats.stages[0].sent_bytes, 8);
            assert!(stats.stages[0].recv_rect_empty);
            assert_eq!(stats.stages[0].composite_ops, 0);
        }
    }

    #[test]
    fn bsbrc_composite_ops_equal_non_blank_received() {
        // Ops must equal the number of non-blank pixels received, never
        // the rect area (the BSBR behaviour).
        let p = 2;
        let (w, h) = (32u16, 32u16);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(w, h);
            if ep.rank() == 1 {
                // Two distant pixels in the half that will be sent: wide
                // rect, only 2 non-blank pixels.
                img.set(2, 2, Pixel::gray(0.5, 0.5));
                img.set(13, 29, Pixel::gray(0.5, 0.5));
            }
            run(ep, &mut img, &depth).unwrap().stats
        });
        // Rank 0 keeps the left half at stage 0 and receives rank 1's
        // left-half content.
        let ops_stage0 = out.results[0].stages[0].composite_ops;
        assert_eq!(ops_stage0, 2, "must composite exactly the non-blank pixels");
    }
}
