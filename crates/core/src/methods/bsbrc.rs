//! Binary-swap with bounding rectangle *and* run-length encoding (BSBRC)
//! — Section 3.4, the paper's best method.
//!
//! BSBRC fixes both parents' weaknesses: unlike BSLC it only iterates
//! (and encodes) the pixels inside the sending half's bounding rectangle
//! (`T_encode · A_send^k`, Equation (7)); unlike BSBR it ships only the
//! non-blank pixels inside that rectangle (8-byte header + 2-byte run
//! codes + 16-byte pixels, Equation (8)).

use vr_comm::Endpoint;
use vr_image::{Image, MaskRle, Pixel};
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs BSBRC. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    // Algorithm lines 2–4: the single O(A) scan for the local bounding
    // rectangle.
    run.bound_pixels += image.area() as u64;
    let mut local_bounds = run.bound.time(|| image.bounding_rect());

    let mut splitter = RegionSplitter::new(image.full_rect());
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        // Line 6: the subimage centerline divides the local bounding
        // rectangle into new-local and sending bounding rectangles.
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));
        let send_bounds = local_bounds.intersect(&send);
        let keep_bounds = local_bounds.intersect(&keep);

        // Lines 7–12: RLE over the sending bounding rectangle only.
        let (payload, ncodes) = run.encode.time(|| {
            let mut w = MsgWriter::with_capacity(8 + 4 + send_bounds.area());
            w.put_rect(send_bounds);
            let mut ncodes = 0u64;
            if !send_bounds.is_empty() {
                let rle = MaskRle::encode_mask(
                    send_bounds.iter().map(|(x, y)| !image.get(x, y).is_blank()),
                );
                ncodes = rle.num_codes() as u64;
                w.put_u32(rle.num_codes() as u32);
                w.put_codes(rle.codes());
                let row_w = send_bounds.width() as usize;
                for (start, len) in rle.non_blank_runs() {
                    for i in 0..len {
                        let pos = start + i;
                        let x = send_bounds.x0 + (pos % row_w) as u16;
                        let y = send_bounds.y0 + (pos / row_w) as u16;
                        w.put_pixel(image.get(x, y));
                    }
                }
            }
            (w.freeze(), ncodes)
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            encoded_pixels: send_bounds.area() as u64,
            run_codes: ncodes,
            ..Default::default()
        };

        // Lines 13–14: the exchange (always happens; an empty rectangle
        // is an 8-byte header). A dead partner contributes nothing.
        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSBRC stage",
        )?;

        // Lines 15–20: unpack and composite only the non-blank pixels.
        let recv_rect = if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let rect = r.get_rect();
                stat.recv_rect_empty = rect.is_empty();
                if !rect.is_empty() {
                    debug_assert!(keep.contains_rect(&rect));
                    let ncodes = r.get_u32() as usize;
                    let rle = MaskRle::from_codes(r.get_codes(ncodes));
                    let front = topo.received_is_front(vpartner);
                    let row_w = rect.width() as usize;
                    let mut ops = 0u64;
                    for (start, len) in rle.non_blank_runs() {
                        for i in 0..len {
                            let pos = start + i;
                            let x = rect.x0 + (pos % row_w) as u16;
                            let y = rect.y0 + (pos / row_w) as u16;
                            let incoming: Pixel = r.get_pixel();
                            let local = image.get_mut(x, y);
                            *local = if front {
                                incoming.over(*local)
                            } else {
                                local.over(incoming)
                            };
                            ops += 1;
                        }
                    }
                    stat.composite_ops = ops;
                }
                rect
            })
        } else {
            stat.recv_rect_empty = true;
            vr_image::Rect::EMPTY
        };
        // Line 21: merge rectangles for the next stage.
        local_bounds = keep_bounds.union(&recv_rect);
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn bsbrc_matches_reference_pow2() {
        for p in [2, 4, 8, 16, 32] {
            check_against_reference(Method::Bsbrc, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbrc_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![7, 3, 5, 1, 6, 2, 4, 0]);
        check_against_reference(Method::Bsbrc, 8, 40, 32, &depth);
    }

    #[test]
    fn bsbrc_matches_reference_non_pow2() {
        for p in [3, 5, 6, 7, 12] {
            check_against_reference(Method::Bsbrc, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbrc_never_sends_more_pixels_than_bsbr() {
        // BSBRC payload = header + codes + non-blank pixels; BSBR payload
        // = header + all rect pixels. On any input the non-blank pixel
        // bytes are a subset; codes may add a little, but for sparse
        // rects BSBRC must win clearly.
        let p = 8;
        let images = test_images(p, 48, 48);
        let depth = DepthOrder::identity(p);
        let total = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .sent_bytes()
            })
            .results
            .iter()
            .sum::<u64>()
        };
        let bsbr = total(Method::Bsbr);
        let bsbrc = total(Method::Bsbrc);
        assert!(
            bsbrc < bsbr,
            "BSBRC {bsbrc} should undercut BSBR {bsbr} on sparse images"
        );
    }

    #[test]
    fn bsbrc_encodes_fewer_pixels_than_bslc() {
        // Equation (7) vs (5): BSBRC encodes A_send^k ≤ A/2^k.
        let p = 8;
        let images = test_images(p, 48, 48);
        let depth = DepthOrder::identity(p);
        let encoded = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                let stats = crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats;
                stats.stages.iter().map(|s| s.encoded_pixels).sum::<u64>()
            })
            .results
            .iter()
            .sum::<u64>()
        };
        let bslc = encoded(Method::Bslc);
        let bsbrc = encoded(Method::Bsbrc);
        assert!(bsbrc <= bslc, "BSBRC encodes {bsbrc} > BSLC {bslc}");
    }

    #[test]
    fn bsbrc_empty_rect_is_header_only() {
        let p = 2;
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(16, 16);
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            assert_eq!(stats.stages[0].sent_bytes, 8);
            assert!(stats.stages[0].recv_rect_empty);
            assert_eq!(stats.stages[0].composite_ops, 0);
        }
    }

    #[test]
    fn bsbrc_composite_ops_equal_non_blank_received() {
        // Ops must equal the number of non-blank pixels received, never
        // the rect area (the BSBR behaviour).
        let p = 2;
        let (w, h) = (32u16, 32u16);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(w, h);
            if ep.rank() == 1 {
                // Two distant pixels in the half that will be sent: wide
                // rect, only 2 non-blank pixels.
                img.set(2, 2, Pixel::gray(0.5, 0.5));
                img.set(13, 29, Pixel::gray(0.5, 0.5));
            }
            run(ep, &mut img, &depth).unwrap().stats
        });
        // Rank 0 keeps the left half at stage 0 and receives rank 1's
        // left-half content.
        let ops_stage0 = out.results[0].stages[0].composite_ops;
        assert_eq!(ops_stage0, 2, "must composite exactly the non-blank pixels");
    }
}
