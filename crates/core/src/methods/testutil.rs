//! Shared test helpers for the method correctness suites.
#![allow(dead_code)]

use vr_comm::{run_group, CostModel};
use vr_image::{Image, Pixel};
use vr_volume::DepthOrder;

/// Builds P deterministic sparse test images.
pub fn test_images(p: usize, w: u16, h: u16) -> Vec<Image> {
    (0..p)
        .map(|r| {
            Image::from_fn(w, h, |x, y| {
                // Each rank covers a diagonal stripe plus a blob.
                let stripe = (x as usize + y as usize * 3 + r * 7) % (p * 4) < 3;
                let blob = {
                    let cx = (r * 13 + 5) % w as usize;
                    let cy = (r * 29 + 11) % h as usize;
                    let dx = x as i32 - cx as i32;
                    let dy = y as i32 - cy as i32;
                    dx * dx + dy * dy < 30
                };
                if stripe || blob {
                    Pixel::gray(
                        0.2 + 0.6 * (r as f32 / p as f32),
                        0.25 + 0.5 * (r as f32 / p as f32),
                    )
                } else {
                    Pixel::BLANK
                }
            })
        })
        .collect()
}

/// Runs a method distributed and compares against the sequential
/// reference within tolerance; returns the gathered image.
pub fn check_against_reference(
    method: crate::methods::Method,
    p: usize,
    w: u16,
    h: u16,
    depth: &DepthOrder,
) -> Image {
    let images = test_images(p, w, h);
    let expect = crate::reference::reference_composite(&images, depth);
    let out = run_group(p, CostModel::free(), |ep| {
        let mut img = images[ep.rank()].clone();
        let result = crate::methods::composite(method, ep, &mut img, depth).unwrap();
        crate::gather::gather_image(ep, &img, &result.piece, 0)
    });
    let final_img = out.results[0].clone().expect("root must gather the image");
    let diff = final_img.max_abs_diff(&expect);
    assert!(
        diff < 2e-4,
        "{method:?} with P={p} differs from reference by {diff}"
    );
    final_img
}
