//! Binary-tree compositing over value-RLE compressed images — the
//! Ahrens & Painter related-work baseline.
//!
//! At stage `k` every active virtual rank with bit `k` set sends its
//! entire (compressed) partial image to the partner `2^k` positions in
//! front of it, then retires; the receiver composites **in the
//! compressed domain** (run-aligned `over`, Section 2). After
//! `⌈log P⌉` stages virtual rank 0 holds the full image.
//!
//! The compression is the *value* run-length encoding (equal consecutive
//! pixel values collapse, 18 bytes per run). The paper's Section 3.3
//! argues this degenerates for float volume pixels; the `encoding`
//! ablation bench quantifies the gap against mask RLE.

use vr_comm::Endpoint;
use vr_image::rle::{ValueRle, ValueRun};
use vr_image::Image;
use vr_volume::DepthOrder;

use crate::error::{try_recv, try_send, CompositeError};
use crate::schedule::{tags, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs binary-tree compositing (works for any `P ≥ 1`).
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let v = topo.vrank();
    let p = topo.vsize();

    // Compress the local subimage once up front.
    run.pre_encoded_pixels += image.area() as u64;
    let mut stream = run.encode.time(|| ValueRle::encode(image.pixels().iter()));

    let mut stage = 0usize;
    while (1usize << stage) < p {
        let bit = 1usize << stage;
        if v & bit != 0 {
            // Sender: ship the compressed stream to the rank `bit`
            // positions in front, then retire.
            let payload = run.comp.time(|| {
                let mut w = MsgWriter::with_capacity(4 + stream.runs().len() * 18);
                w.put_u32(stream.runs().len() as u32);
                for r in stream.runs() {
                    w.put_pixel(r.pixel);
                    w.put_codes(&[r.count]);
                }
                w.freeze()
            });
            let mut stat = StageStat {
                run_codes: stream.runs().len() as u64,
                peer: Some(topo.real(v - bit) as u16),
                ..Default::default()
            };
            let len = payload.len() as u64;
            // A dead parent loses this subtree's partial (a hole); the
            // sender retires either way.
            if try_send(
                ep,
                topo.real(v - bit),
                tags::TREE_BASE + stage as u32,
                payload,
                &mut run.dead,
                "binary-tree send",
            )? {
                stat.sent_bytes = len;
                stat.sent_msgs = 1;
            }
            run.stages.push(stat);
            return Ok(run.finish(ep, OwnedPiece::Nothing));
        }
        if v + bit < p {
            // Receiver: the partner behind us sends; composite local
            // (front) over received (back), run-aligned. A dead child
            // contributes nothing.
            let mut stat = StageStat {
                peer: Some(topo.real(v + bit) as u16),
                ..Default::default()
            };
            if let Some(received) = try_recv(
                ep,
                topo.real(v + bit),
                tags::TREE_BASE + stage as u32,
                &mut run.dead,
                "binary-tree recv",
            )? {
                stat.recv_bytes = received.len() as u64;
                stat.recv_msgs = 1;
                run.comp.time(|| {
                    let mut r = MsgReader::new(received);
                    let nruns = r.get_u32() as usize;
                    let mut runs = Vec::with_capacity(nruns);
                    for _ in 0..nruns {
                        let pixel = r.get_pixel();
                        let count = r.get_codes(1)[0];
                        runs.push(ValueRun { pixel, count });
                    }
                    let back = ValueRle::from_runs(runs);
                    stream = ValueRle::composite_over(&stream, &back);
                    stat.composite_ops = stream.runs().len() as u64;
                });
            }
            run.stages.push(stat);
        }
        stage += 1;
    }

    // Virtual rank 0 decompresses the final image.
    run.comp.time(|| {
        let pixels = stream.decode();
        let full = image.full_rect();
        image.write_rect(&full, &pixels);
    });
    Ok(run.finish(ep, OwnedPiece::Whole))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_against_reference;
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn tree_matches_reference_pow2() {
        for p in [2, 4, 8] {
            check_against_reference(Method::BinaryTree, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn tree_matches_reference_non_pow2() {
        for p in [3, 5, 7] {
            check_against_reference(Method::BinaryTree, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn tree_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![1, 3, 0, 2]);
        check_against_reference(Method::BinaryTree, 4, 20, 20, &depth);
    }

    #[test]
    fn only_front_rank_owns_whole() {
        let depth = DepthOrder::from_sequence(vec![2, 0, 1, 3]);
        let out = run_group(4, CostModel::free(), |ep| {
            let mut img = Image::blank(8, 8);
            run(ep, &mut img, &depth).unwrap().piece
        });
        // Virtual rank 0 is real rank 2.
        for (rank, piece) in out.results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(*piece, OwnedPiece::Whole);
            } else {
                assert_eq!(*piece, OwnedPiece::Nothing);
            }
        }
    }

    #[test]
    fn blank_images_compress_to_one_run() {
        let out = run_group(2, CostModel::free(), |ep| {
            let mut img = Image::blank(64, 64);
            run(ep, &mut img, &depth_identity()).unwrap().stats
        });
        // Sender (virtual rank 1) ships a single 18-byte run… but 64·64 =
        // 4096 pixels > u16::MAX? No: 4096 fits, so exactly one run +
        // 4-byte count.
        let sender = &out.results[1];
        assert_eq!(sender.stages[0].sent_bytes, 4 + 18);
        assert_eq!(sender.stages[0].run_codes, 1);
    }

    fn depth_identity() -> DepthOrder {
        DepthOrder::identity(2)
    }
}
