//! The compositing methods and their common runtime plumbing.

pub mod binary_tree;
pub mod bs;
pub mod bsbm;
pub mod bsbr;
pub mod bsbrc;
pub mod bslc;
pub mod bsmr;
pub mod bsrl;
pub mod direct_send;
pub mod pipeline;
pub mod radix;
#[cfg(test)]
pub(crate) mod testutil;
pub mod tile_stream;

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use vr_comm::Endpoint;
use vr_image::{Image, Rect, StridedSeq};
use vr_volume::DepthOrder;

use crate::error::CompositeError;
use crate::stats::{MethodStats, StageStat};
use crate::timer::Stopwatch;
use crate::wire::ScratchPool;

/// Which compositing method to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Plain binary-swap (Ma et al. 1994) — the paper's baseline.
    Bs,
    /// Binary-swap with bounding rectangles (Section 3.2).
    Bsbr,
    /// Binary-swap with run-length encoding and static load balancing
    /// (Section 3.3).
    Bslc,
    /// Binary-swap with bounding rectangle *and* run-length encoding
    /// (Section 3.4) — the paper's best performer.
    Bsbrc,
    /// Ablation: binary-swap with run-length encoding over *spatial*
    /// halves (BSLC without the interleaved load balancing; not a paper
    /// method).
    Bsrl,
    /// Future-work extension: bounding rectangle + *bitmask* encoding
    /// (the paper's "more efficient encoding schemes" item).
    Bsbm,
    /// Future-work extension: *multiple* bounding rectangles per stage
    /// (up to 8 tight disjoint rects instead of one).
    Bsmr,
    /// Binary-tree compositing over value-RLE compressed images
    /// (Ahrens & Painter, related work).
    BinaryTree,
    /// Buffered direct-send: every rank owns a static band and receives
    /// `P−1` contributions (Hsu / Neumann, related work).
    DirectSend,
    /// Parallel-pipeline compositing over a depth-ordered ring (related
    /// work, adapted from Lee et al.).
    Pipeline,
    /// Radix-k compositing with bounding-rectangle compression — the
    /// modern generalization of binary swap (extension; rounds follow a
    /// greedy factorization of `P`).
    RadixK,
    /// Asynchronous tile-streamed compositing (Distributed FrameBuffer
    /// direction): 32-px screen tiles interleaved over owner ranks, each
    /// tile's non-blank runs streamed to its owner as soon as it is
    /// available, folded in deterministic depth order on arrival.
    TileStream,
}

impl Method {
    /// The four methods compared in the paper's tables, in table order.
    pub fn paper_methods() -> [Method; 4] {
        [Method::Bs, Method::Bsbr, Method::Bslc, Method::Bsbrc]
    }

    /// All implemented methods.
    pub fn all() -> [Method; 12] {
        [
            Method::Bs,
            Method::Bsbr,
            Method::Bslc,
            Method::Bsbrc,
            Method::Bsrl,
            Method::Bsbm,
            Method::Bsmr,
            Method::BinaryTree,
            Method::DirectSend,
            Method::Pipeline,
            Method::RadixK,
            Method::TileStream,
        ]
    }

    /// The paper's name for the method.
    pub fn name(self) -> &'static str {
        match self {
            Method::Bs => "BS",
            Method::Bsbr => "BSBR",
            Method::Bslc => "BSLC",
            Method::Bsbrc => "BSBRC",
            Method::Bsrl => "BSRL",
            Method::Bsbm => "BSBM",
            Method::Bsmr => "BSMR",
            Method::BinaryTree => "BTREE",
            Method::DirectSend => "DSEND",
            Method::Pipeline => "PIPE",
            Method::RadixK => "RADIXK",
            Method::TileStream => "TSTREAM",
        }
    }
}

/// The part of the final image a rank owns after compositing.
#[derive(Clone, Debug, PartialEq)]
pub enum OwnedPiece {
    /// A rectangular region (spatial binary-swap methods, direct send,
    /// pipeline).
    Rect(Rect),
    /// A set of disjoint rectangles (tile-stream owners hold every tile
    /// assigned to them by the interleave).
    Rects(Vec<Rect>),
    /// An interleaved pixel sequence (BSLC).
    Seq(StridedSeq),
    /// The whole image (binary-tree root).
    Whole,
    /// Nothing (folded-out ranks, non-root tree ranks).
    Nothing,
}

/// A rank's compositing outcome: its owned piece (with the final pixels
/// in the rank's image buffer) plus the measured/modeled statistics.
#[derive(Clone, Debug)]
pub struct CompositeResult {
    /// The final-image region this rank's buffer now holds.
    pub piece: OwnedPiece,
    /// Cost breakdown for this rank.
    pub stats: MethodStats,
    /// Peers this rank found dead during the schedule (ascending). Empty
    /// in a healthy run; non-empty means the owned piece may contain
    /// transparent holes where the dead peers' pixels belonged.
    pub dead_partners: Vec<usize>,
}

impl CompositeResult {
    /// True when at least one peer died mid-schedule.
    pub fn is_degraded(&self) -> bool {
        !self.dead_partners.is_empty()
    }
}

/// Runs `method` over this rank's subimage. On return, the pixels of the
/// returned piece inside `image` are final; use
/// [`gather_image`](crate::gather::gather_image) to assemble them.
///
/// Errors only when this rank itself was killed by fault injection or
/// the schedule broke down (receive timeout / tag mismatch); a *peer*
/// dying mid-run is survivable and reported via
/// [`CompositeResult::dead_partners`].
///
/// ```
/// use slsvr_core::{composite, gather_image, Method};
/// use vr_comm::{run_group, CostModel};
/// use vr_image::{Image, Pixel};
/// use vr_volume::DepthOrder;
///
/// // Rank 0's opaque pixel must win over rank 1's.
/// let depth = DepthOrder::identity(2);
/// let out = run_group(2, CostModel::sp2(), |ep| {
///     let mut img = Image::blank(8, 8);
///     img.set(3, 3, Pixel::gray(if ep.rank() == 0 { 1.0 } else { 0.2 }, 1.0));
///     let result = composite(Method::Bsbrc, ep, &mut img, &depth).unwrap();
///     gather_image(ep, &img, &result.piece, 0)
/// });
/// let final_image = out.results[0].as_ref().unwrap();
/// assert_eq!(final_image.get(3, 3).r, 1.0);
/// ```
pub fn composite(
    method: Method,
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    assert_eq!(
        depth.front_to_back().len(),
        ep.size(),
        "depth order must cover exactly the group"
    );
    match method {
        Method::Bs => bs::run(ep, image, depth),
        Method::Bsbr => bsbr::run(ep, image, depth),
        Method::Bslc => bslc::run(ep, image, depth),
        Method::Bsbrc => bsbrc::run(ep, image, depth),
        Method::Bsrl => bsrl::run(ep, image, depth),
        Method::Bsbm => bsbm::run(ep, image, depth),
        Method::Bsmr => bsmr::run(ep, image, depth),
        Method::BinaryTree => binary_tree::run(ep, image, depth),
        Method::DirectSend => direct_send::run(ep, image, depth),
        Method::Pipeline => pipeline::run(ep, image, depth),
        Method::RadixK => radix::run(ep, image, depth),
        Method::TileStream => tile_stream::run(ep, image, depth),
    }
}

/// Shared bookkeeping for a method run: section stopwatches, stage stats
/// and the starting communication-time watermark.
pub(crate) struct Run {
    /// General compute sections (packing, unpacking, compositing).
    pub comp: Stopwatch,
    /// The initial bounding-rectangle scan (`T_bound`).
    pub bound: Stopwatch,
    /// Run-length encoding sections (`T_encode` terms).
    pub encode: Stopwatch,
    /// Per-stage counters.
    pub stages: Vec<StageStat>,
    /// Pixels scanned by bounding-rectangle searches.
    pub bound_pixels: u64,
    /// Pixels visited by one-time pre-stage encoding (binary tree).
    pub pre_encoded_pixels: u64,
    /// Peers found dead so far (fed by the `try_*` helpers in
    /// [`crate::error`]).
    pub dead: BTreeSet<usize>,
    /// Reusable send/recv staging buffers shared by every stage of the
    /// schedule (the zero-copy wire path); also tracks the peak resident
    /// staging footprint reported through
    /// `TrafficStats::peak_pixel_buffer_bytes`.
    pub scratch: ScratchPool,
    comm_start: f64,
}

impl Run {
    pub fn begin(ep: &Endpoint) -> Self {
        Run {
            comp: Stopwatch::new(),
            bound: Stopwatch::new(),
            encode: Stopwatch::new(),
            stages: Vec::new(),
            bound_pixels: 0,
            pre_encoded_pixels: 0,
            dead: BTreeSet::new(),
            scratch: ScratchPool::new(),
            comm_start: ep.stats().modeled_comm_seconds,
        }
    }

    pub fn finish(self, ep: &mut Endpoint, piece: OwnedPiece) -> CompositeResult {
        ep.note_pixel_buffer_peak(self.scratch.peak_bytes());
        let stats = MethodStats {
            comp_seconds: self.comp.seconds() + self.bound.seconds() + self.encode.seconds(),
            bound_seconds: self.bound.seconds(),
            encode_seconds: self.encode.seconds(),
            comm_seconds: ep.stats().modeled_comm_seconds - self.comm_start,
            bound_pixels: self.bound_pixels,
            pre_encoded_pixels: self.pre_encoded_pixels,
            stages: self.stages,
            first_tile_seconds: None,
            last_tile_seconds: None,
        };
        CompositeResult {
            piece,
            stats,
            dead_partners: self.dead.into_iter().collect(),
        }
    }
}

/// The band of image rows owned by virtual rank `v` among `p` (used by
/// direct send and pipeline).
pub(crate) fn band_rect(image_width: u16, image_height: u16, v: usize, p: usize) -> Rect {
    let h = image_height as usize;
    let y0 = (v * h / p) as u16;
    let y1 = ((v + 1) * h / p) as u16;
    Rect::new(0, y0, image_width, y1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_rects_partition_rows() {
        for p in [1, 2, 3, 5, 8, 64] {
            let mut covered = 0usize;
            let mut prev_end = 0u16;
            for v in 0..p {
                let b = band_rect(100, 77, v, p);
                assert_eq!(b.y0, prev_end, "bands must be contiguous");
                prev_end = b.y1;
                covered += b.area();
            }
            assert_eq!(prev_end, 77);
            assert_eq!(covered, 7700);
        }
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(Method::Bs.name(), "BS");
        assert_eq!(Method::Bsbrc.name(), "BSBRC");
        assert_eq!(
            Method::paper_methods().map(|m| m.name()),
            ["BS", "BSBR", "BSLC", "BSBRC"]
        );
    }
}
