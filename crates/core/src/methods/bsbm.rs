//! Binary-swap with bounding rectangle and **bitmask** encoding (BSBM)
//! — an implementation of the paper's closing future-work item, "study
//! more efficient encoding schemes".
//!
//! Instead of run-length codes, the non-blank pattern inside the
//! sending bounding rectangle is shipped as a dense bitmask: exactly
//! `⌈A_send/8⌉` bytes regardless of fragmentation. Compared with
//! BSBRC's `2·R_code` bytes, the bitmask wins whenever the content is
//! fragmented (`R_code > A_send/16`) and loses on long coherent runs —
//! a trade-off quantified by the `encoding` ablation bench.

use vr_comm::Endpoint;
use vr_image::{Image, Pixel, Rect};
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Packs the blank/non-blank mask of `rect` into bytes (LSB-first
/// within each byte, row-major scan order).
pub fn pack_bitmask(image: &Image, rect: &Rect) -> (Vec<u8>, usize) {
    let mut mask = vec![0u8; rect.area().div_ceil(8)];
    let mut non_blank = 0usize;
    for (i, (x, y)) in rect.iter().enumerate() {
        if !image.get(x, y).is_blank() {
            mask[i / 8] |= 1 << (i % 8);
            non_blank += 1;
        }
    }
    (mask, non_blank)
}

/// Iterates the rect-relative positions set in a bitmask.
pub fn iter_bitmask(mask: &[u8], area: usize) -> impl Iterator<Item = usize> + '_ {
    (0..area).filter(move |&i| mask[i / 8] & (1 << (i % 8)) != 0)
}

/// Runs BSBM. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    run.bound_pixels += image.area() as u64;
    let mut local_bounds = run.bound.time(|| image.bounding_rect());

    let mut splitter = RegionSplitter::new(image.full_rect());
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));
        let send_bounds = local_bounds.intersect(&send);
        let keep_bounds = local_bounds.intersect(&keep);

        let payload = run.encode.time(|| {
            let mut w = MsgWriter::with_capacity(8 + send_bounds.area() / 8 + 64);
            w.put_rect(send_bounds);
            if !send_bounds.is_empty() {
                let (mask, _) = pack_bitmask(image, &send_bounds);
                w.put_bytes(&mask);
                let row_w = send_bounds.width() as usize;
                for pos in iter_bitmask(&mask, send_bounds.area()) {
                    let x = send_bounds.x0 + (pos % row_w) as u16;
                    let y = send_bounds.y0 + (pos / row_w) as u16;
                    w.put_pixel(image.get(x, y));
                }
            }
            w.freeze()
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            encoded_pixels: send_bounds.area() as u64,
            ..Default::default()
        };

        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSBM stage",
        )?;

        let recv_rect = if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let rect = r.get_rect();
                stat.recv_rect_empty = rect.is_empty();
                if !rect.is_empty() {
                    debug_assert!(keep.contains_rect(&rect));
                    let mask = r.get_bytes(rect.area().div_ceil(8));
                    let front = topo.received_is_front(vpartner);
                    let row_w = rect.width() as usize;
                    let mut ops = 0u64;
                    for pos in iter_bitmask(&mask, rect.area()) {
                        let x = rect.x0 + (pos % row_w) as u16;
                        let y = rect.y0 + (pos / row_w) as u16;
                        let incoming: Pixel = r.get_pixel();
                        let local = image.get_mut(x, y);
                        *local = if front {
                            incoming.over(*local)
                        } else {
                            local.over(incoming)
                        };
                        ops += 1;
                    }
                    stat.composite_ops = ops;
                }
                rect
            })
        } else {
            stat.recv_rect_empty = true;
            Rect::EMPTY
        };
        local_bounds = keep_bounds.union(&recv_rect);
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_against_reference;
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn bsbm_matches_reference() {
        for p in [2, 4, 8, 16] {
            check_against_reference(Method::Bsbm, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbm_matches_reference_shuffled_and_non_pow2() {
        let depth = DepthOrder::from_sequence(vec![4, 1, 5, 0, 2, 3]);
        check_against_reference(Method::Bsbm, 6, 28, 20, &depth);
    }

    #[test]
    fn bitmask_round_trips() {
        let mut img = Image::blank(16, 8);
        img.set(1, 0, Pixel::gray(0.5, 0.5));
        img.set(7, 3, Pixel::gray(0.5, 0.5));
        img.set(15, 7, Pixel::gray(0.5, 0.5));
        let rect = img.full_rect();
        let (mask, n) = pack_bitmask(&img, &rect);
        assert_eq!(n, 3);
        let positions: Vec<usize> = iter_bitmask(&mask, rect.area()).collect();
        assert_eq!(positions, vec![1, 3 * 16 + 7, 7 * 16 + 15]);
    }

    #[test]
    fn bitmask_beats_rle_on_fragmented_content() {
        // Alternating pixels: RLE degenerates to ~2 codes/px (4 B per 2
        // px), the bitmask stays at 1 bit/px.
        let p = 2;
        let (w, h) = (64u16, 64u16);
        let depth = DepthOrder::identity(p);
        let images: Vec<Image> = (0..p)
            .map(|_| {
                Image::from_fn(w, h, |x, y| {
                    if (x + y) % 2 == 0 {
                        Pixel::gray(0.5, 0.5)
                    } else {
                        Pixel::BLANK
                    }
                })
            })
            .collect();
        let sent = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .sent_bytes()
            })
            .results[0]
        };
        let bsbm = sent(Method::Bsbm);
        let bsbrc = sent(Method::Bsbrc);
        assert!(
            bsbm < bsbrc,
            "bitmask should beat RLE on checkerboard: {bsbm} vs {bsbrc}"
        );
    }

    #[test]
    fn rle_beats_bitmask_on_coherent_content() {
        // One solid block: RLE needs a handful of codes, the bitmask
        // still pays 1 bit for every rect pixel.
        let p = 2;
        let (w, h) = (64u16, 64u16);
        let depth = DepthOrder::identity(p);
        let images: Vec<Image> = (0..p)
            .map(|_| {
                Image::from_fn(w, h, |x, y| {
                    if x < 8 && y < 60 {
                        Pixel::gray(0.5, 0.5)
                    } else if x > 55 && y > 60 {
                        Pixel::gray(0.2, 0.2)
                    } else {
                        Pixel::BLANK
                    }
                })
            })
            .collect();
        let sent = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .sent_bytes()
            })
            .results[0]
        };
        let bsbm = sent(Method::Bsbm);
        let bsbrc = sent(Method::Bsbrc);
        assert!(
            bsbrc < bsbm,
            "RLE should beat bitmask on coherent blocks: {bsbrc} vs {bsbm}"
        );
    }

    #[test]
    fn bsbm_empty_rect_is_header_only() {
        let p = 2;
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(16, 16);
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            assert_eq!(stats.stages[0].sent_bytes, 8);
        }
    }
}
