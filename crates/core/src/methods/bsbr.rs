//! Binary-swap with bounding rectangles (BSBR) — Section 3.2.
//!
//! Each stage ships an 8-byte bounding rectangle header plus the *dense*
//! pixels inside the sending half's bounding rectangle. Blank pixels
//! inside the rectangle still travel — the method's weakness on sparse
//! images like `Cube` — but the `O(1)` per-stage bookkeeping (intersect
//! and union of rectangles after the initial `O(A)` scan, the paper's
//! `T_bound`) keeps computation minimal.

use vr_comm::Endpoint;
use vr_image::Image;
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs BSBR. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    // T_bound: the one full scan for the initial bounding rectangle.
    run.bound_pixels += image.area() as u64;
    let mut local_bounds = run.bound.time(|| image.bounding_rect());

    let mut splitter = RegionSplitter::new(image.full_rect());
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));

        // O(1) rectangle bookkeeping instead of a rescan.
        let send_bounds = local_bounds.intersect(&send);
        let keep_bounds = local_bounds.intersect(&keep);

        let scratch = &mut run.scratch;
        let payload = run.comp.time(|| {
            let mut w =
                MsgWriter::with_capacity(8 + send_bounds.area() * vr_image::BYTES_PER_PIXEL);
            w.put_rect(send_bounds);
            if !send_bounds.is_empty() {
                image.extract_rect_into(&send_bounds, &mut scratch.send);
                w.put_pixels(&scratch.send);
            }
            w.freeze()
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            ..Default::default()
        };

        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSBR stage",
        )?;

        let recv_rect = if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            let scratch = &mut run.scratch;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let rect = r.get_rect();
                stat.recv_rect_empty = rect.is_empty();
                if !rect.is_empty() {
                    debug_assert!(
                        keep.contains_rect(&rect),
                        "received rect must lie in kept half"
                    );
                    r.get_pixels_into(rect.area(), &mut scratch.recv);
                    stat.composite_ops = if topo.received_is_front(vpartner) {
                        image.composite_rect_over(&rect, &scratch.recv) as u64
                    } else {
                        image.composite_rect_under(&rect, &scratch.recv) as u64
                    };
                }
                rect
            })
        } else {
            stat.recv_rect_empty = true;
            vr_image::Rect::EMPTY
        };
        // New local bounding rectangle: what we kept plus what arrived
        // (algorithm line 21).
        local_bounds = keep_bounds.union(&recv_rect);
        run.scratch.note_watermark();
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};
    use vr_image::{Pixel, Rect};

    #[test]
    fn bsbr_matches_reference_pow2() {
        for p in [2, 4, 8, 16] {
            check_against_reference(Method::Bsbr, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbr_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![5, 2, 7, 0, 3, 6, 1, 4]);
        check_against_reference(Method::Bsbr, 8, 28, 36, &depth);
    }

    #[test]
    fn bsbr_matches_reference_non_pow2() {
        for p in [3, 6, 12] {
            check_against_reference(Method::Bsbr, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsbr_sends_less_than_bs_on_sparse_images() {
        let p = 4;
        let (w, h) = (64u16, 64u16);
        // Sparse content: one small blob per rank.
        let images: Vec<Image> = (0..p)
            .map(|r| {
                let mut img = Image::blank(w, h);
                for dy in 0..4u16 {
                    for dx in 0..4u16 {
                        img.set(10 + r as u16 * 6 + dx, 20 + dy, Pixel::gray(0.5, 0.8));
                    }
                }
                img
            })
            .collect();
        let depth = DepthOrder::identity(p);
        let run_method = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .sent_bytes()
            })
            .results
            .iter()
            .sum::<u64>()
        };
        let bs = run_method(Method::Bs);
        let bsbr = run_method(Method::Bsbr);
        assert!(
            bsbr * 4 < bs,
            "BSBR should send far less on sparse input: {bsbr} vs {bs}"
        );
    }

    #[test]
    fn bsbr_empty_rect_sends_header_only() {
        // Rank 1's image is completely blank → every payload it sends is
        // just the 8-byte rectangle header.
        let p = 2;
        let images = [test_images(1, 16, 16)[0].clone(), Image::blank(16, 16)];
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().stats
        });
        let blank_rank = &out.results[1];
        assert_eq!(blank_rank.stages[0].sent_bytes, 8);
        // And the partner observed an empty receiving rectangle.
        assert!(out.results[0].stages[0].recv_rect_empty);
    }

    #[test]
    fn bsbr_tracks_bounds_without_rescan() {
        // The local bounding rectangle after each stage must still cover
        // all non-blank pixels of the kept region (checked implicitly by
        // reference equality on a workload designed to move bounds).
        let p = 8;
        let depth = DepthOrder::from_sequence(vec![1, 3, 5, 7, 0, 2, 4, 6]);
        check_against_reference(Method::Bsbr, p, 40, 40, &depth);
    }

    #[test]
    fn bsbr_final_regions_partition_image() {
        let p = 4;
        let images = test_images(p, 16, 16);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().piece
        });
        let mut total = 0;
        for piece in &out.results {
            if let OwnedPiece::Rect(r) = piece {
                total += r.area();
            } else {
                panic!("expected rect piece");
            }
        }
        assert_eq!(total, 256);
        let _ = Rect::EMPTY;
    }
}
