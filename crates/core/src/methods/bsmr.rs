//! Binary-swap with **multiple bounding rectangles** (BSMR) — an
//! encoding-scheme extension in the spirit of the paper's future work.
//!
//! BSBR's weakness is the single rectangle: two small clusters in
//! opposite corners force one huge, mostly blank rectangle. BSMR covers
//! the sending half's non-blank pixels with up to [`MAX_RECTS`] disjoint
//! rectangles, found by recursively bisecting any rectangle whose
//! non-blank density is below a threshold and re-tightening the
//! children. Wire format per stage: `u32` rect count, then per rect an
//! 8-byte header plus its dense pixels.
//!
//! Compared with BSBRC (RLE), BSMR keeps BSBR's dense-copy compositing
//! (no per-pixel decoding) while shedding most of its blank-pixel
//! traffic — a middle point on the encoding-cost / byte-count curve.

use vr_comm::Endpoint;
use vr_image::{Image, Rect};
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Maximum rectangles per message (depth-3 bisection).
pub const MAX_RECTS: usize = 8;

/// Density below which a rectangle is worth splitting further.
const SPLIT_DENSITY: f64 = 0.6;

/// Covers the non-blank pixels of `image` inside `within` with at most
/// `max_rects` disjoint, individually tight rectangles.
pub fn cover_rects(image: &Image, within: &Rect, max_rects: usize) -> Vec<Rect> {
    let bounds = image.bounding_rect_in(within);
    if bounds.is_empty() {
        return Vec::new();
    }
    let mut rects = vec![bounds];
    // Greedily split the sparsest rectangle while budget remains.
    while rects.len() < max_rects {
        // Pick the rect with the lowest density and a splittable extent.
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in rects.iter().enumerate() {
            if r.width() < 2 && r.height() < 2 {
                continue;
            }
            let density = image.non_blank_count_in(r) as f64 / r.area() as f64;
            if density < SPLIT_DENSITY && best.is_none_or(|(_, d)| density < d) {
                best = Some((i, density));
            }
        }
        let Some((idx, _)) = best else { break };
        let r = rects.swap_remove(idx);
        let (a, b) = if r.width() >= r.height() {
            r.split_at_x(r.x0 + r.width() / 2)
        } else {
            r.split_at_y(r.y0 + r.height() / 2)
        };
        // Re-tighten both halves; drop empties.
        for half in [a, b] {
            let tight = image.bounding_rect_in(&half);
            if !tight.is_empty() {
                rects.push(tight);
            }
        }
        if rects.is_empty() {
            break;
        }
    }
    rects
}

/// Runs BSMR. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    run.bound_pixels += image.area() as u64;
    // BSMR re-tightens per stage, so it re-scans the send half instead of
    // doing O(1) rectangle algebra; charge those scans as bound work.
    let mut splitter = RegionSplitter::new(image.full_rect());
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));

        let (payload, nrects) = run.bound.time(|| {
            let rects = cover_rects(image, &send, MAX_RECTS);
            let mut w = MsgWriter::with_capacity(
                4 + rects
                    .iter()
                    .map(|r| 8 + r.area() * vr_image::BYTES_PER_PIXEL)
                    .sum::<usize>(),
            );
            w.put_u32(rects.len() as u32);
            for r in &rects {
                w.put_rect(*r);
                w.put_pixels(&image.extract_rect(r));
            }
            (w.freeze(), rects.len())
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            run_codes: nrects as u64,
            ..Default::default()
        };

        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSMR stage",
        )?;

        if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let n = r.get_u32() as usize;
                stat.recv_rect_empty = n == 0;
                let front = topo.received_is_front(vpartner);
                let mut ops = 0u64;
                for _ in 0..n {
                    let rect = r.get_rect();
                    debug_assert!(keep.contains_rect(&rect));
                    let pixels = r.get_pixels(rect.area());
                    // Disjoint rects from one sender commute freely.
                    ops += if front {
                        image.composite_rect_over(&rect, &pixels) as u64
                    } else {
                        image.composite_rect_under(&rect, &pixels) as u64
                    };
                }
                stat.composite_ops = ops;
            });
        } else {
            stat.recv_rect_empty = true;
        }
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};
    use vr_image::Pixel;

    #[test]
    fn cover_rects_tight_on_two_clusters() {
        let mut img = Image::blank(64, 64);
        for d in 0..4u16 {
            for e in 0..4u16 {
                img.set(2 + d, 2 + e, Pixel::gray(0.5, 0.5));
                img.set(58 + d, 58 + e, Pixel::gray(0.5, 0.5));
            }
        }
        let rects = cover_rects(&img, &img.full_rect(), MAX_RECTS);
        let covered: usize = rects.iter().map(|r| r.area()).sum();
        // Two tight 4×4 rects instead of one 60×60 box.
        assert!(rects.len() >= 2);
        assert!(covered <= 64, "cover too loose: {rects:?}");
        // Every non-blank pixel is inside some rect.
        for y in 0..64u16 {
            for x in 0..64u16 {
                if !img.get(x, y).is_blank() {
                    assert!(
                        rects.iter().any(|r| r.contains(x, y)),
                        "({x},{y}) uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_rects_respects_budget_and_disjointness() {
        let img = Image::from_fn(32, 32, |x, y| {
            if (x / 3 + y / 3) % 2 == 0 {
                Pixel::gray(0.5, 0.5)
            } else {
                Pixel::BLANK
            }
        });
        let rects = cover_rects(&img, &img.full_rect(), MAX_RECTS);
        assert!(rects.len() <= MAX_RECTS);
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(a.intersect(b).is_empty(), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn cover_rects_empty_input() {
        let img = Image::blank(16, 16);
        assert!(cover_rects(&img, &img.full_rect(), MAX_RECTS).is_empty());
    }

    #[test]
    fn bsmr_matches_reference() {
        for p in [2, 4, 8, 16] {
            check_against_reference(Method::Bsmr, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsmr_matches_reference_shuffled_and_non_pow2() {
        let depth = DepthOrder::from_sequence(vec![4, 1, 5, 0, 2, 3]);
        check_against_reference(Method::Bsmr, 6, 28, 20, &depth);
        for p in [3, 5, 7] {
            check_against_reference(Method::Bsmr, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsmr_beats_bsbr_on_corner_clusters() {
        let p = 2;
        let depth = DepthOrder::identity(p);
        let images: Vec<Image> = (0..p)
            .map(|_| {
                let mut img = Image::blank(64, 64);
                // Two separated clusters, both inside the right half that
                // rank 0 sends at stage 0.
                for d in 0..4u16 {
                    for e in 0..4u16 {
                        img.set(40 + d, 2 + e, Pixel::gray(0.5, 0.5));
                        img.set(58 + d, 58 + e, Pixel::gray(0.5, 0.5));
                    }
                }
                img
            })
            .collect();
        let sent = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .sent_bytes()
            })
            .results[0]
        };
        let bsmr = sent(Method::Bsmr);
        let bsbr = sent(Method::Bsbr);
        assert!(
            bsmr * 4 < bsbr,
            "BSMR {bsmr} should crush BSBR {bsbr} on corner clusters"
        );
    }

    #[test]
    fn bsmr_stage_counters_are_sane() {
        let p = 8;
        let images = test_images(p, 32, 32);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            assert_eq!(stats.stages.len(), 3);
            for s in &stats.stages {
                assert!(s.run_codes as usize <= MAX_RECTS);
                assert!(s.sent_bytes >= 4);
            }
        }
    }
}
