//! Parallel-pipeline compositing over a depth-ordered ring — adapted
//! from Lee et al.'s scheme (Section 2, the "sequenced case").
//!
//! The image is split into `P` bands. Band `b`'s partial starts at ring
//! position `(b+1) mod P`, travels once around the depth-ordered ring
//! and finishes — complete — at position `b`, each visitor compositing
//! its own band contribution en route. Lee's original merges z-buffered
//! polygon pixels (commutative), so ring direction is irrelevant there;
//! `over` is order-sensitive, so each travelling partial carries **two**
//! accumulation buffers: `a` for contributors behind the wrap point and
//! `b` for contributors in front of it, merged (`b over a`) at the final
//! stop. This keeps every accumulation depth-contiguous.

use vr_comm::Endpoint;
use vr_image::{Image, Pixel};
use vr_volume::DepthOrder;

use crate::error::{try_recv, try_send, CompositeError};
use crate::schedule::{tags, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{band_rect, CompositeResult, OwnedPiece, Run};

/// Wire marker for "no band": the sender's upstream died, so the chain
/// that should occupy this ring slot is lost. Forwarding the marker
/// keeps the ring in lockstep so downstream ranks never stall.
const NO_BAND: u32 = u32::MAX;

/// Runs parallel-pipeline compositing (any `P ≥ 1`).
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let j = topo.vrank();
    let p = topo.vsize();
    let my_band = band_rect(image.width(), image.height(), j, p);

    if p == 1 {
        return Ok(run.finish(ep, OwnedPiece::Rect(my_band)));
    }

    let next = topo.real((j + 1) % p);
    let prev = topo.real((j + p - 1) % p);

    // We start band (j−1) mod P: our own contribution seeds the
    // behind-segment accumulator `a`. `have_band` goes false when the
    // chain through us is severed by a dead upstream rank.
    let mut band_id = (j + p - 1) % p;
    let mut have_band = true;
    let mut a_buf = {
        let band = band_rect(image.width(), image.height(), band_id, p);
        run.comp.time(|| image.extract_rect(&band))
    };
    let mut b_buf: Option<Vec<Pixel>> = None;

    for t in 0..p - 1 {
        let tag = tags::PIPE_BASE + t as u32;
        let payload = run.comp.time(|| {
            if !have_band {
                let mut w = MsgWriter::with_capacity(4);
                w.put_u32(NO_BAND);
                return w.freeze();
            }
            let band = band_rect(image.width(), image.height(), band_id, p);
            let mut w = MsgWriter::with_capacity(
                8 + (1 + b_buf.is_some() as usize) * band.area() * vr_image::BYTES_PER_PIXEL,
            );
            w.put_u32(band_id as u32);
            w.put_u32(b_buf.is_some() as u32);
            w.put_pixels(&a_buf);
            if let Some(b) = &b_buf {
                w.put_pixels(b);
            }
            w.freeze()
        });
        let mut stat = StageStat::default();
        let len = payload.len() as u64;
        if try_send(ep, next, tag, payload, &mut run.dead, "pipeline send")? {
            stat.sent_bytes = len;
            stat.sent_msgs = 1;
        }

        match try_recv(ep, prev, tag, &mut run.dead, "pipeline recv")? {
            None => {
                // Dead upstream: the travelling chains are lost from here
                // on; keep pumping NO_BAND markers so downstream survives.
                have_band = false;
                b_buf = None;
            }
            Some(received) => {
                stat.recv_bytes = received.len() as u64;
                stat.recv_msgs = 1;
                run.comp.time(|| {
                    let mut r = MsgReader::new(received);
                    let got = r.get_u32();
                    if got == NO_BAND {
                        have_band = false;
                        b_buf = None;
                        return;
                    }
                    have_band = true;
                    band_id = got as usize;
                    let has_b = r.get_u32() == 1;
                    let band = band_rect(image.width(), image.height(), band_id, p);
                    a_buf = r.get_pixels(band.area());
                    b_buf = if has_b {
                        Some(r.get_pixels(band.area()))
                    } else {
                        None
                    };

                    // Composite our own contribution for this band. The band
                    // started at position s = (band_id+1) mod P; if our position
                    // has not wrapped past 0 relative to s we extend the behind
                    // segment `a`, otherwise the front segment `b`.
                    let s = (band_id + 1) % p;
                    let mine = image.extract_rect(&band);
                    let mut ops = 0u64;
                    if s <= j {
                        // Behind segment: `a` holds [s..j−1] front-to-back; we
                        // are behind them.
                        for (acc, m) in a_buf.iter_mut().zip(&mine) {
                            *acc = acc.over(*m);
                            ops += 1;
                        }
                    } else {
                        // Front segment (wrapped): `b` holds [0..j−1]; we are
                        // behind them but in front of everything in `a`.
                        match &mut b_buf {
                            Some(b) => {
                                for (acc, m) in b.iter_mut().zip(&mine) {
                                    *acc = acc.over(*m);
                                    ops += 1;
                                }
                            }
                            None => {
                                b_buf = Some(mine);
                            }
                        }
                    }
                    stat.composite_ops = ops;
                });
            }
        }
        run.stages.push(stat);
    }

    if have_band && band_id == j {
        // Healthy finish: after P−1 hops we hold our own band; merge the
        // two segments.
        run.comp.time(|| {
            if let Some(b) = b_buf.take() {
                for (front, back) in b.iter().zip(a_buf.iter_mut()) {
                    *back = front.over(*back);
                }
            }
            image.write_rect(&my_band, &a_buf);
        });
    }
    // Degraded finish: our band's travelling partial was lost with a dead
    // rank. The image buffer still holds our own rendering of `my_band`,
    // so the owned piece degrades to this rank's own contribution.

    Ok(run.finish(ep, OwnedPiece::Rect(my_band)))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_against_reference;
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn pipeline_matches_reference() {
        for p in [2, 3, 4, 5, 8] {
            check_against_reference(Method::Pipeline, p, 24, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn pipeline_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![3, 0, 4, 1, 5, 2]);
        check_against_reference(Method::Pipeline, 6, 30, 24, &depth);
    }

    #[test]
    fn pipeline_runs_p_minus_1_hops() {
        let p = 5;
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = Image::blank(10, 10);
            run(ep, &mut img, &depth).unwrap().stats.stages.len()
        });
        assert!(out.results.iter().all(|&hops| hops == p - 1));
    }

    #[test]
    fn pipeline_single_rank_trivial() {
        let out = run_group(1, CostModel::free(), |ep| {
            let mut img = Image::blank(8, 8);
            img.set(1, 1, Pixel::gray(0.5, 0.5));
            let res = run(ep, &mut img, &DepthOrder::identity(1)).unwrap();
            (res.piece, img.get(1, 1))
        });
        let (piece, px) = &out.results[0];
        assert_eq!(*piece, OwnedPiece::Rect(vr_image::Rect::new(0, 0, 8, 8)));
        assert_eq!(*px, Pixel::gray(0.5, 0.5));
    }
}
