//! Asynchronous tile-streamed compositing (`tile-stream`).
//!
//! The screen is cut into a row-major grid of square tiles
//! ([`DEFAULT_STREAM_TILE`] pixels on a side) and tile `t` is statically
//! assigned to the rank at position `t mod P` of the front-to-back
//! order — the same interleaved assignment BSLC uses for pixels, so
//! every owner holds a spread of tiles rather than one hot region. Each
//! rank walks its subimage tile by tile, encodes the tile's non-blank
//! runs with the RunSet wire format, and immediately sends them to the
//! tile's owner; a `DONE` sentinel closes each contributor→owner stream.
//! Owners fold arrivals as they land and gather exactly as the
//! bulk-synchronous methods do.
//!
//! **Determinism.** Arrival order is *not* deterministic on the real
//! transport, so correctness cannot depend on it: every owner keeps one
//! slot per (owned tile, contributor) and folds a tile's contributions
//! strictly in virtual-rank order — slot `v` is folded only once slots
//! `0..v` are resolved (content, or known-empty via `DONE`). The fold
//! applies the same `Pixel::over` expression, in the same front-to-back
//! order, as [`reference_composite`](crate::conformance); skipping blank
//! pixels is exact because `over` with a blank operand is the identity
//! on either side. The final framebuffer is therefore bit-identical to
//! the sequential reference for *any* interleaving of arrivals.
//!
//! **Virtual time.** Under the virtual-clock transport each tile send is
//! stamped with the sender's cumulative modeled render cost
//! ([`MODELED_RENDER_SECONDS_PER_PIXEL`]), so delivery order is a pure
//! function of the schedule seed — the conformance sweep replays the
//! same stream under many seeds and pins the same image hash.
//!
//! **Degradation.** A contributor that dies mid-stream leaves its
//! unresolved slots empty: the owner sees the disconnect only after the
//! transport's already-delivered messages drain, marks every remaining
//! slot of that contributor as empty, and finishes — a transparent hole
//! at the dead rank's tiles, never a hang.

use std::time::Instant;

use vr_comm::Endpoint;
use vr_image::{kernel, Image, MaskRle, Pixel, Rect};
use vr_volume::DepthOrder;

use crate::error::{try_recv_any, try_send_timed, AnyRecv, CompositeError};
use crate::schedule::{tags, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Default streamed-tile edge in pixels (matches the renderer's default
/// screen tile, so one rendered tile maps to one streamed message).
pub const DEFAULT_STREAM_TILE: u16 = 32;

/// Modeled seconds of render time per non-blank pixel, used to stamp
/// each streamed tile with the virtual instant its render would have
/// finished. Only the virtual-clock transport consumes the stamp; its
/// absolute scale just has to be large enough relative to wire costs
/// that tile completion, not send issue order, drives delivery times.
pub const MODELED_RENDER_SECONDS_PER_PIXEL: f64 = 4.0e-5;

/// Modeled seconds to visit one tile regardless of content (macrocell
/// prescan + setup); keeps blank tiles from being free in the stamp.
pub const MODELED_TILE_VISIT_SECONDS: f64 = 2.0e-6;

/// Sentinel tile index closing one contributor→owner stream.
const DONE: u32 = u32::MAX;

/// The row-major grid of `tile`-px screen tiles covering `width` ×
/// `height` (edge tiles clamped). Every rank derives the identical grid,
/// so tile indices are globally meaningful.
pub fn tile_grid(width: u16, height: u16, tile: u16) -> Vec<Rect> {
    assert!(tile > 0, "stream tile must be positive");
    let mut rects = Vec::new();
    let mut y = 0u16;
    while y < height {
        let y1 = height.min(y.saturating_add(tile));
        let mut x = 0u16;
        while x < width {
            let x1 = width.min(x.saturating_add(tile));
            rects.push(Rect::new(x, y, x1, y1));
            x = x1;
        }
        y = y1;
    }
    rects
}

/// Reusable scratch buffers for tile encoding (one per rank, reused
/// across every tile of the frame).
#[derive(Default)]
pub struct TileCodec {
    runs: vr_image::RunSet,
    codes: Vec<u16>,
}

/// One encoded streamed-tile message plus its cost counters.
pub struct EncodedTile {
    /// Wire payload: `[tile u32][ncodes u32][codes][pixels]`.
    pub payload: bytes::Bytes,
    /// Non-blank pixels carried.
    pub non_blank: usize,
    /// Run codes emitted.
    pub run_codes: usize,
}

/// Scans `rect` of `image` and encodes its non-blank runs as one
/// streamed tile message; `None` when the tile contributes nothing
/// (blank tiles are never sent — `over` with blank is the identity, so
/// skipping them is bit-exact).
pub fn encode_tile(
    image: &Image,
    rect: &Rect,
    tile: u32,
    scratch: &mut TileCodec,
) -> Option<EncodedTile> {
    scratch.runs.clear();
    let w = rect.width() as usize;
    for (row, y) in (rect.y0..rect.y1).enumerate() {
        kernel::scan_runs_into(image.row_span(rect.x0, y, w), row * w, &mut scratch.runs);
    }
    let non_blank = scratch.runs.non_blank_total();
    if non_blank == 0 {
        return None;
    }
    scratch
        .runs
        .encode_codes_into(rect.area(), &mut scratch.codes);
    let mut w = MsgWriter::with_capacity(
        8 + scratch.codes.len() * vr_image::BYTES_PER_RUN_CODE
            + non_blank * vr_image::BYTES_PER_PIXEL,
    );
    w.put_u32(tile);
    w.put_u32(scratch.codes.len() as u32);
    w.put_codes(&scratch.codes);
    for &(start, len) in scratch.runs.runs() {
        for_each_run_span(image, rect, start, len, |span| w.put_pixels(span));
    }
    Some(EncodedTile {
        payload: w.freeze(),
        non_blank,
        run_codes: scratch.codes.len(),
    })
}

/// The just-encoded tile's contribution as slot data — the
/// owner-is-self shortcut, skipping the wire round-trip. Must be called
/// directly after [`encode_tile`] returned `Some` (it reads the scratch
/// run table).
pub fn local_contribution(
    image: &Image,
    rect: &Rect,
    scratch: &TileCodec,
) -> (MaskRle, Vec<Pixel>) {
    let mask = scratch.runs.to_rle();
    let mut pixels = Vec::with_capacity(scratch.runs.non_blank_total());
    for &(start, len) in scratch.runs.runs() {
        for_each_run_span(image, rect, start, len, |span| {
            pixels.extend_from_slice(span)
        });
    }
    (mask, pixels)
}

/// Decodes a streamed tile payload after the tile index has been read.
pub fn decode_tile(r: &mut MsgReader) -> (MaskRle, Vec<Pixel>) {
    let ncodes = r.get_u32() as usize;
    let mask = MaskRle::from_codes(r.get_codes(ncodes));
    let pixels = r.get_pixels(mask.non_blank_total());
    (mask, pixels)
}

/// Walks a run of the tile-local row-major index space, mapping it back
/// to (clipped) image row spans.
fn for_each_run_span(
    image: &Image,
    rect: &Rect,
    start: usize,
    len: usize,
    mut f: impl FnMut(&[Pixel]),
) {
    let w = rect.width() as usize;
    let mut idx = start;
    let mut rem = len;
    while rem > 0 {
        let row = idx / w;
        let col = idx % w;
        let take = rem.min(w - col);
        f(image.row_span(rect.x0 + col as u16, rect.y0 + row as u16, take));
        idx += take;
        rem -= take;
    }
}

/// One contributor's state for one owned tile.
enum Slot {
    /// Neither content nor `DONE` seen yet.
    Unknown,
    /// Known blank (explicitly, via `DONE`, or via a dead contributor).
    Empty,
    /// Content waiting for its turn in the depth order.
    Content { mask: MaskRle, pixels: Vec<Pixel> },
}

/// The deterministic accumulator for one owned tile: contributions fold
/// strictly in virtual-rank (front-to-back) order via `acc = acc over
/// contribution`, exactly the sequential reference's association, no
/// matter what order they arrive in.
pub struct TileAccum {
    rect: Rect,
    acc: Vec<Pixel>,
    slots: Vec<Slot>,
    /// First virtual rank not yet folded into `acc`.
    next_v: usize,
    ops: u64,
}

impl TileAccum {
    /// A blank accumulator for `rect` awaiting `p` contributors.
    pub fn new(rect: Rect, p: usize) -> TileAccum {
        TileAccum {
            rect,
            acc: vec![Pixel::BLANK; rect.area()],
            slots: (0..p).map(|_| Slot::Unknown).collect(),
            next_v: 0,
            ops: 0,
        }
    }

    /// The tile's screen rectangle.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// The accumulated pixels (final once [`TileAccum::is_complete`]).
    pub fn pixels(&self) -> &[Pixel] {
        &self.acc
    }

    /// `over` operations applied so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// True once every contributor has been folded.
    pub fn is_complete(&self) -> bool {
        self.next_v == self.slots.len()
    }

    /// Whether contributor `v` has already been resolved.
    pub fn is_resolved(&self, v: usize) -> bool {
        v < self.next_v || !matches!(self.slots[v], Slot::Unknown)
    }

    /// Records contributor `v`'s non-blank runs for this tile.
    pub fn resolve_content(&mut self, v: usize, mask: MaskRle, pixels: Vec<Pixel>) {
        debug_assert!(!self.is_resolved(v), "contributor {v} resolved twice");
        self.slots[v] = Slot::Content { mask, pixels };
        self.advance();
    }

    /// Records that contributor `v` has nothing for this tile (explicit
    /// `DONE`, or the contributor died before sending it).
    pub fn resolve_empty(&mut self, v: usize) {
        if self.is_resolved(v) {
            return;
        }
        self.slots[v] = Slot::Empty;
        self.advance();
    }

    /// Folds the maximal resolved prefix into the accumulator.
    fn advance(&mut self) {
        while self.next_v < self.slots.len() {
            match std::mem::replace(&mut self.slots[self.next_v], Slot::Empty) {
                Slot::Unknown => {
                    self.slots[self.next_v] = Slot::Unknown;
                    return;
                }
                Slot::Empty => {}
                Slot::Content { mask, pixels } => {
                    let mut i = 0usize;
                    for (pos, len) in mask.non_blank_runs() {
                        // acc (vranks < next_v) stays in front of this
                        // contribution — the reference fold direction.
                        kernel::under_slice(&mut self.acc[pos..pos + len], &pixels[i..i + len]);
                        i += len;
                        self.ops += len as u64;
                    }
                }
            }
            self.next_v += 1;
        }
    }
}

/// Runs tile-streamed compositing with the default tile size.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    run_with_tile(ep, image, depth, DEFAULT_STREAM_TILE)
}

/// Runs tile-streamed compositing with an explicit tile size. The final
/// image is invariant to `tile` (only message granularity changes).
pub fn run_with_tile(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
    tile: u16,
) -> Result<CompositeResult, CompositeError> {
    if VirtualTopology::from_depth(ep.rank(), depth).vsize() == 1 {
        let run = Run::begin(ep);
        return Ok(run.finish(ep, OwnedPiece::Whole));
    }
    // The bulk path "completes" tiles in index order; the fused
    // render+composite runner in vr-system drives the same state
    // machine out of its render pool instead, offering tiles in
    // whatever order they finish rendering.
    let mut ts = TileStream::begin(ep, image.width(), image.height(), depth, tile);
    for t in 0..ts.tiles().len() {
        let rect = ts.tiles()[t];
        ts.offer(ep, t, image, &rect)?;
    }
    ts.finish(ep, image)
}

/// The streamed-compositing state machine, split out so external
/// drivers (the fused render+composite runner) can interleave tile
/// production with the protocol:
///
/// 1. [`TileStream::begin`] fixes the tile grid and ownership map;
/// 2. [`TileStream::offer`] encodes and ships (or self-resolves) one
///    finished tile — call it once per tile, in *any* order; tiles
///    never offered are treated as blank;
/// 3. [`TileStream::finish`] closes the streams, folds remaining
///    arrivals, writes this rank's owned tiles into the framebuffer and
///    returns the gatherable piece with its statistics.
pub struct TileStream {
    run: Run,
    topo: VirtualTopology,
    v: usize,
    p: usize,
    owners: usize,
    vrank_of: Vec<usize>,
    tiles: Vec<Rect>,
    accums: Vec<TileAccum>,
    progress: Progress,
    stat: StageStat,
    scratch: TileCodec,
    modeled_render: f64,
}

impl TileStream {
    /// Starts a streamed run over a `width` × `height` frame cut into
    /// `tile`-px tiles. Works at any group size, including 1.
    pub fn begin(
        ep: &mut Endpoint,
        width: u16,
        height: u16,
        depth: &DepthOrder,
        tile: u16,
    ) -> TileStream {
        let run = Run::begin(ep);
        let topo = VirtualTopology::from_depth(ep.rank(), depth);
        let (v, p) = (topo.vrank(), topo.vsize());
        let tiles = tile_grid(width, height, tile);
        let owners = p.min(tiles.len());
        let mut vrank_of = vec![0usize; p];
        for (i, &r) in depth.front_to_back().iter().enumerate() {
            vrank_of[r] = i;
        }
        // Accumulators for this rank's owned tiles: tile `t` with
        // `t % p == v` lands in slot `t / p`.
        let accums: Vec<TileAccum> = tiles
            .iter()
            .enumerate()
            .filter(|&(t, _)| t % p == v)
            .map(|(_, r)| TileAccum::new(*r, p))
            .collect();
        let progress = Progress::new(accums.len(), Instant::now());
        TileStream {
            run,
            topo,
            v,
            p,
            owners,
            vrank_of,
            tiles,
            accums,
            progress,
            stat: StageStat::default(),
            scratch: TileCodec::default(),
            modeled_render: 0.0,
        }
    }

    /// The row-major tile grid every rank derived identically.
    pub fn tiles(&self) -> &[Rect] {
        &self.tiles
    }

    /// Offers the finished pixels of tile `t`: encodes its non-blank
    /// runs and sends them to the owner (or resolves them locally when
    /// this rank owns the tile). `rect` locates the tile's pixels inside
    /// `img` — the global tile rect when `img` is a full subimage, or
    /// the origin rect when `img` is a tile-local buffer; it must have
    /// the tile's dimensions either way.
    pub fn offer(
        &mut self,
        ep: &mut Endpoint,
        t: usize,
        img: &Image,
        rect: &Rect,
    ) -> Result<(), CompositeError> {
        debug_assert_eq!(
            (rect.width(), rect.height()),
            (self.tiles[t].width(), self.tiles[t].height()),
            "offered rect must have tile {t}'s dimensions"
        );
        let TileStream { run, scratch, .. } = self;
        let enc = run
            .encode
            .time(|| encode_tile(img, rect, t as u32, scratch));
        self.stat.encoded_pixels += rect.area() as u64;
        self.modeled_render += MODELED_TILE_VISIT_SECONDS;
        let owner = t % self.p;
        let Some(enc) = enc else {
            if owner == self.v {
                let (slot, v) = (t / self.p, self.v);
                let TileStream { run, accums, .. } = self;
                run.comp.time(|| accums[slot].resolve_empty(v));
                self.progress.note(&self.accums, slot);
            }
            return Ok(());
        };
        self.modeled_render += MODELED_RENDER_SECONDS_PER_PIXEL * enc.non_blank as f64;
        self.stat.run_codes += enc.run_codes as u64;
        if owner == self.v {
            let (slot, v) = (t / self.p, self.v);
            let (mask, pixels) = local_contribution(img, rect, &self.scratch);
            let TileStream { run, accums, .. } = self;
            run.comp
                .time(|| accums[slot].resolve_content(v, mask, pixels));
            self.progress.note(&self.accums, slot);
        } else {
            let bytes = enc.payload.len() as u64;
            if try_send_timed(
                ep,
                self.topo.real(owner),
                tags::TILE,
                enc.payload,
                self.modeled_render,
                &mut self.run.dead,
                "tile stream send",
            )? {
                self.stat.sent_bytes += bytes;
                self.stat.sent_msgs += 1;
            }
        }
        Ok(())
    }

    /// Closes this rank's streams, folds arrivals until every
    /// contributor finishes, writes the owned tiles into `image` and
    /// returns the composited piece. Owned tiles this rank never
    /// offered resolve as blank (the fused runner offers only tiles
    /// inside its block footprint).
    pub fn finish(
        mut self,
        ep: &mut Endpoint,
        image: &mut Image,
    ) -> Result<CompositeResult, CompositeError> {
        {
            let TileStream {
                run,
                accums,
                progress,
                v,
                ..
            } = &mut self;
            run.comp.time(|| {
                for a in accums.iter_mut() {
                    a.resolve_empty(*v);
                }
            });
            progress.note_all(accums);
        }
        // Close our stream to every owner.
        for u in 0..self.owners {
            if u == self.v {
                continue;
            }
            let mut w = MsgWriter::with_capacity(4);
            w.put_u32(DONE);
            if try_send_timed(
                ep,
                self.topo.real(u),
                tags::TILE,
                w.freeze(),
                self.modeled_render,
                &mut self.run.dead,
                "tile stream done",
            )? {
                self.stat.sent_bytes += 4;
                self.stat.sent_msgs += 1;
            }
        }

        // Receive phase: owners fold arrivals until every contributor's
        // stream closes (DONE) or its endpoint drains and disconnects.
        //
        // Every other rank is awaited even if a send to it already
        // failed: its *successfully delivered* messages must still be
        // drained (the transport only reports a disconnect once its
        // queue is empty), or they would surface as tag mismatches in
        // the gather.
        let (v, p) = (self.v, self.p);
        if !self.accums.is_empty() && p > 1 {
            let mut awaiting: Vec<bool> = (0..ep.size()).map(|r| r != ep.rank()).collect();
            let mut remaining = ep.size() - 1;
            while remaining > 0 {
                match try_recv_any(
                    ep,
                    &awaiting,
                    tags::TILE,
                    &mut self.run.dead,
                    "tile stream recv",
                )? {
                    AnyRecv::Message(src, bytes) => {
                        self.stat.recv_bytes += bytes.len() as u64;
                        self.stat.recv_msgs += 1;
                        let mut r = MsgReader::new(bytes);
                        let t = r.get_u32();
                        let sv = self.vrank_of[src];
                        if t == DONE {
                            awaiting[src] = false;
                            remaining -= 1;
                            let TileStream { run, accums, .. } = &mut self;
                            run.comp.time(|| {
                                for a in accums.iter_mut() {
                                    a.resolve_empty(sv);
                                }
                            });
                            self.progress.note_all(&self.accums);
                        } else {
                            let (mask, pixels) = decode_tile(&mut r);
                            debug_assert_eq!(t as usize % p, v, "tile routed to wrong owner");
                            let slot = t as usize / p;
                            let TileStream { run, accums, .. } = &mut self;
                            run.comp
                                .time(|| accums[slot].resolve_content(sv, mask, pixels));
                            self.progress.note(&self.accums, slot);
                        }
                    }
                    AnyRecv::PeerDied(src) => {
                        awaiting[src] = false;
                        remaining -= 1;
                        let sv = self.vrank_of[src];
                        let TileStream { run, accums, .. } = &mut self;
                        run.comp.time(|| {
                            for a in accums.iter_mut() {
                                a.resolve_empty(sv);
                            }
                        });
                        self.progress.note_all(&self.accums);
                    }
                }
            }
        }
        for a in &self.accums {
            debug_assert!(a.is_complete());
            image.write_rect(a.rect(), a.pixels());
            self.stat.composite_ops += a.ops();
        }

        let piece = if self.accums.is_empty() {
            OwnedPiece::Nothing
        } else {
            OwnedPiece::Rects(self.accums.iter().map(|a| *a.rect()).collect())
        };
        self.run.stages.push(self.stat);
        let (first, last) = self.progress.into_offsets();
        let mut result = self.run.finish(ep, piece);
        result.stats.first_tile_seconds = first;
        result.stats.last_tile_seconds = last;
        Ok(result)
    }
}

/// Tracks when owned tiles finish accumulating (wall clock, for the
/// progressive-latency metrics; meaningful on the real transport).
struct Progress {
    done: Vec<bool>,
    start: Instant,
    first: Option<f64>,
    last: Option<f64>,
}

impl Progress {
    fn new(n: usize, start: Instant) -> Progress {
        Progress {
            done: vec![false; n],
            start,
            first: None,
            last: None,
        }
    }

    fn note(&mut self, accums: &[TileAccum], slot: usize) {
        if !self.done[slot] && accums[slot].is_complete() {
            self.done[slot] = true;
            let at = self.start.elapsed().as_secs_f64();
            self.first.get_or_insert(at);
            self.last = Some(at);
        }
    }

    fn note_all(&mut self, accums: &[TileAccum]) {
        for slot in 0..self.done.len() {
            self.note(accums, slot);
        }
    }

    fn into_offsets(self) -> (Option<f64>, Option<f64>) {
        (self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil;
    use crate::methods::Method;

    #[test]
    fn grid_tiles_the_image_exactly() {
        for (w, h, t) in [
            (64u16, 48u16, 32u16),
            (33, 17, 32),
            (5, 5, 32),
            (96, 96, 16),
        ] {
            let tiles = tile_grid(w, h, t);
            let area: usize = tiles.iter().map(|r| r.area()).sum();
            assert_eq!(area, w as usize * h as usize, "{w}x{h} tile {t}");
            for r in &tiles {
                assert!(r.width() <= t && r.height() <= t);
            }
        }
        assert!(tile_grid(0, 32, 32).is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut img = Image::blank(40, 20);
        img.set(3, 2, Pixel::gray(0.5, 0.5));
        img.set(4, 2, Pixel::gray(0.25, 1.0));
        img.set(39, 19, Pixel::gray(1.0, 1.0));
        let mut scratch = TileCodec::default();
        for (t, rect) in tile_grid(40, 20, 32).iter().enumerate() {
            let Some(enc) = encode_tile(&img, rect, t as u32, &mut scratch) else {
                continue;
            };
            // The wire payload and the local shortcut must agree.
            let (lmask, lpix) = local_contribution(&img, rect, &scratch);
            let mut r = MsgReader::new(enc.payload);
            assert_eq!(r.get_u32() as usize, t);
            let (mask, pixels) = decode_tile(&mut r);
            assert_eq!(mask.codes(), lmask.codes());
            assert_eq!(pixels, lpix);
            assert_eq!(pixels.len(), enc.non_blank);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn accumulator_is_arrival_order_independent() {
        // Three contributors over one 4x1 tile; fold them in every
        // arrival order and require bit-identical accumulators.
        let rect = Rect::new(0, 0, 4, 1);
        let contribs: Vec<(MaskRle, Vec<Pixel>)> = (0..3u32)
            .map(|v| {
                let mut img = Image::blank(4, 1);
                img.set(v as u16, 0, Pixel::gray(0.3 + v as f32 * 0.2, 0.5));
                img.set(3, 0, Pixel::gray(0.9 - v as f32 * 0.1, 0.4));
                let mut scratch = TileCodec::default();
                let enc = encode_tile(&img, &rect, 0, &mut scratch).unwrap();
                let mut r = MsgReader::new(enc.payload);
                r.get_u32();
                decode_tile(&mut r)
            })
            .collect();
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut reference: Option<Vec<Pixel>> = None;
        for order in orders {
            let mut acc = TileAccum::new(rect, 3);
            for &v in &order {
                let (mask, pixels) = contribs[v].clone();
                acc.resolve_content(v, mask, pixels);
            }
            assert!(acc.is_complete());
            match &reference {
                None => reference = Some(acc.pixels().to_vec()),
                Some(r) => assert_eq!(acc.pixels(), &r[..], "order {order:?}"),
            }
        }
    }

    #[test]
    fn matches_reference_composite() {
        for p in [1usize, 2, 3, 4, 5, 7, 8] {
            let depth = DepthOrder::identity(p);
            testutil::check_against_reference(Method::TileStream, p, 80, 56, &depth);
        }
    }

    #[test]
    fn bit_identical_to_reference_with_shuffled_depth() {
        use vr_comm::{run_group, CostModel};
        for p in [2usize, 3, 5, 8] {
            // A non-identity visibility order: reversed.
            let depth = DepthOrder::from_sequence((0..p).rev().collect());
            let images = testutil::test_images(p, 80, 56);
            let expect = crate::reference::reference_composite(&images, &depth);
            let out = run_group(p, CostModel::sp2(), |ep| {
                let mut img = images[ep.rank()].clone();
                let result =
                    crate::methods::composite(Method::TileStream, ep, &mut img, &depth).unwrap();
                assert!(result.dead_partners.is_empty());
                crate::gather::gather_image(ep, &img, &result.piece, 0)
            });
            let final_img = out.results[0].clone().expect("root gathers");
            assert_eq!(
                final_img.max_abs_diff(&expect),
                0.0,
                "tile-stream must be bit-identical at P={p}"
            );
        }
    }
}
