//! Radix-k compositing with bounding-rectangle compression — the modern
//! generalization of binary swap (Peterka et al.'s radix-k lineage,
//! which descends from the methods this paper studies).
//!
//! Each round picks a radix `r`: groups of `r` ranks split their current
//! region into `r` strips, every member keeps one strip and direct-sends
//! the other `r−1` (bounding-rectangle compressed, BSBR-style) to their
//! owners, then composites the `r` contributions in depth order. With
//! `r = 2` every round this is exactly BSBR; with one round of `r = P`
//! it degenerates to direct send. Intermediate radices trade message
//! *count* (`Σ (r_j − 1)` per rank) against message *size* and rounds —
//! the knob that made radix-k win on modern interconnects where the
//! paper's SP2 analysis charged `T_s` per message.
//!
//! Any `P ≥ 1` works without folding: the rounds follow a factorization
//! of `P` itself (greedy factors ≤ 4; a prime `P > 4` becomes one
//! direct-send-style round), and each round's merged partials stay
//! depth-contiguous because groups are contiguous virtual-rank blocks.

use vr_comm::Endpoint;
use vr_image::{Image, Pixel, Rect};
use vr_volume::DepthOrder;

use crate::error::{try_recv, try_send, CompositeError};
use crate::schedule::{tags, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Factors `p` into per-round radices: greedy factors of 4, 3, 2; any
/// remaining prime becomes its own round.
pub fn round_radices(mut p: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for f in [4usize, 3, 2] {
        while p.is_multiple_of(f) && p > 1 {
            out.push(f);
            p /= f;
        }
    }
    if p > 1 {
        out.push(p);
    }
    out
}

/// Splits `region` into `r` strips along `axis` (0 = x, 1 = y) with
/// near-equal extents; strips tile the region exactly.
fn strips(region: Rect, r: usize, axis: usize) -> Vec<Rect> {
    let mut out = Vec::with_capacity(r);
    if axis == 0 {
        let w = region.width() as usize;
        for i in 0..r {
            let x0 = region.x0 + (w * i / r) as u16;
            let x1 = region.x0 + (w * (i + 1) / r) as u16;
            out.push(Rect::new(x0, region.y0, x1, region.y1));
        }
    } else {
        let h = region.height() as usize;
        for i in 0..r {
            let y0 = region.y0 + (h * i / r) as u16;
            let y1 = region.y0 + (h * (i + 1) / r) as u16;
            out.push(Rect::new(region.x0, y0, region.x1, y1));
        }
    }
    out
}

/// Runs radix-k compositing (any `P ≥ 1`). See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let v = topo.vrank();
    let p = topo.vsize();

    // Like BSBR: one O(A) scan, then rectangle bookkeeping.
    run.bound_pixels += image.area() as u64;
    let mut local_bounds = run.bound.time(|| image.bounding_rect());

    let mut region = image.full_rect();
    // Round `j` pairs same-strip owners `stride` apart: after round `j`
    // a rank's partial covers a contiguous block of `stride · radix`
    // virtual ranks, so digit order remains depth order.
    let mut stride = 1usize;

    for (round, &radix) in round_radices(p).iter().enumerate() {
        let my_digit = (v / stride) % radix;
        let base = v - my_digit * stride;
        let parts = strips(region, radix, round % 2);
        let keep = parts[my_digit];
        let mut stat = StageStat::default();

        // Send every foreign strip to its owner in the sibling block
        // (BSBR-compressed).
        for (d, part) in parts.iter().enumerate() {
            if d == my_digit {
                continue;
            }
            let target = topo.real(base + d * stride);
            let send_bounds = local_bounds.intersect(part);
            let payload = run.comp.time(|| {
                let mut w =
                    MsgWriter::with_capacity(8 + send_bounds.area() * vr_image::BYTES_PER_PIXEL);
                w.put_rect(send_bounds);
                if !send_bounds.is_empty() {
                    w.put_pixels(&image.extract_rect(&send_bounds));
                }
                w.freeze()
            });
            let len = payload.len() as u64;
            if try_send(
                ep,
                target,
                tags::STAGE_BASE + round as u32,
                payload,
                &mut run.dead,
                "radix-k send",
            )? {
                stat.sent_bytes += len;
                stat.sent_msgs += 1;
            }
        }

        // Receive the other digits' contributions for my strip; a dead
        // group member simply contributes nothing.
        let mut fronts: Vec<(Rect, Vec<Pixel>)> = Vec::new(); // digits < mine
        let mut backs: Vec<(Rect, Vec<Pixel>)> = Vec::new(); // digits > mine
        for d in 0..radix {
            if d == my_digit {
                continue;
            }
            let src = topo.real(base + d * stride);
            let Some(received) = try_recv(
                ep,
                src,
                tags::STAGE_BASE + round as u32,
                &mut run.dead,
                "radix-k recv",
            )?
            else {
                continue;
            };
            stat.recv_bytes += received.len() as u64;
            stat.recv_msgs += 1;
            let (rect, pixels) = run.comp.time(|| {
                let mut rd = MsgReader::new(received);
                let rect = rd.get_rect();
                let pixels = if rect.is_empty() {
                    Vec::new()
                } else {
                    rd.get_pixels(rect.area())
                };
                (rect, pixels)
            });
            if rect.is_empty() {
                continue;
            }
            debug_assert!(keep.contains_rect(&rect));
            if d < my_digit {
                fronts.push((rect, pixels));
            } else {
                backs.push((rect, pixels));
            }
        }

        // Composite in depth order: digits ascending. Backs (behind us)
        // apply in ascending order via `under`; fronts apply in
        // descending order via `over`. `fronts`/`backs` already arrive
        // digit-ascending from the loop above.
        run.comp.time(|| {
            let mut ops = 0u64;
            let mut new_bounds = local_bounds.intersect(&keep);
            for (rect, pixels) in &backs {
                ops += image.composite_rect_under(rect, pixels) as u64;
                new_bounds = new_bounds.union(rect);
            }
            for (rect, pixels) in fronts.iter().rev() {
                ops += image.composite_rect_over(rect, pixels) as u64;
                new_bounds = new_bounds.union(rect);
            }
            stat.composite_ops = ops;
            local_bounds = new_bounds;
        });

        region = keep;
        stride *= radix;
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(region)))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn radices_factorize() {
        assert_eq!(round_radices(1), Vec::<usize>::new());
        assert_eq!(round_radices(2), vec![2]);
        assert_eq!(round_radices(8), vec![4, 2]);
        assert_eq!(round_radices(64), vec![4, 4, 4]);
        assert_eq!(round_radices(12), vec![4, 3]);
        assert_eq!(round_radices(6), vec![3, 2]);
        assert_eq!(round_radices(7), vec![7]);
        assert_eq!(round_radices(10), vec![2, 5]);
        for p in 1..=64usize {
            assert_eq!(round_radices(p).iter().product::<usize>().max(1), p.max(1));
        }
    }

    #[test]
    fn strips_tile_the_region() {
        for r in 1..6 {
            for axis in 0..2 {
                let region = Rect::new(3, 5, 40, 29);
                let parts = strips(region, r, axis);
                assert_eq!(parts.len(), r);
                let total: usize = parts.iter().map(|p| p.area()).sum();
                assert_eq!(total, region.area());
                for w in parts.windows(2) {
                    assert!(w[0].intersect(&w[1]).is_empty());
                }
            }
        }
    }

    #[test]
    fn radix_matches_reference_pow2() {
        for p in [2, 4, 8, 16] {
            check_against_reference(Method::RadixK, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn radix_matches_reference_composite_counts() {
        for p in [3, 6, 9, 12] {
            check_against_reference(Method::RadixK, p, 36, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn radix_matches_reference_prime_p() {
        for p in [5, 7, 11] {
            check_against_reference(Method::RadixK, p, 33, 22, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn radix_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![5, 2, 7, 0, 3, 6, 1, 4]);
        check_against_reference(Method::RadixK, 8, 32, 32, &depth);
    }

    #[test]
    fn radix_uses_fewer_rounds_than_binary_swap() {
        let p = 16;
        let images = test_images(p, 32, 32);
        let depth = DepthOrder::identity(p);
        let rounds = |m: Method| {
            run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(m, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .stages
                    .len()
            })
            .results[0]
        };
        assert_eq!(rounds(Method::RadixK), 2); // 16 = 4 × 4
        assert_eq!(rounds(Method::Bs), 4); // log2 16
    }

    #[test]
    fn radix_final_regions_partition_image() {
        let p = 12;
        let images = test_images(p, 36, 24);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().piece
        });
        let mut total = 0usize;
        for piece in &out.results {
            match piece {
                OwnedPiece::Rect(r) => total += r.area(),
                other => panic!("unexpected piece {other:?}"),
            }
        }
        assert_eq!(total, 36 * 24);
    }
}
