//! Plain binary-swap compositing (Ma et al. 1994) — Section 3.1.
//!
//! At stage `k`, paired processors exchange complementary halves of their
//! current region as **full frames** — every pixel travels, blank or not
//! — and composite the received half with the half they keep. After
//! `log P` stages each processor owns `A/P` pixels of the final image.
//!
//! Per-stage bytes: `16 · A/2^k` exactly (Equation (2)); there is no
//! header because the receiver derives the region from the shared
//! schedule.

use vr_comm::Endpoint;
use vr_image::Image;
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs plain binary swap. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    let mut splitter = RegionSplitter::new(image.full_rect());
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));

        let scratch = &mut run.scratch;
        let payload = run.comp.time(|| {
            image.extract_rect_into(&send, &mut scratch.send);
            let mut w = MsgWriter::with_capacity(send.area() * vr_image::BYTES_PER_PIXEL);
            w.put_pixels(&scratch.send);
            w.freeze()
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            ..Default::default()
        };

        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BS stage",
        )?;

        if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            let scratch = &mut run.scratch;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                r.get_pixels_into(keep.area(), &mut scratch.recv);
                stat.composite_ops = if topo.received_is_front(vpartner) {
                    image.composite_rect_over(&keep, &scratch.recv) as u64
                } else {
                    image.composite_rect_under(&keep, &scratch.recv) as u64
                };
            });
        }
        run.scratch.note_watermark();
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use vr_comm::{run_group, CostModel};
    use vr_image::Rect;

    #[test]
    fn bs_matches_reference_pow2() {
        for p in [2, 4, 8] {
            check_against_reference(
                crate::methods::Method::Bs,
                p,
                32,
                24,
                &DepthOrder::identity(p),
            );
        }
    }

    #[test]
    fn bs_matches_reference_shuffled_depth() {
        let depth = DepthOrder::from_sequence(vec![3, 1, 0, 2]);
        check_against_reference(crate::methods::Method::Bs, 4, 20, 20, &depth);
    }

    #[test]
    fn bs_matches_reference_non_pow2() {
        for p in [3, 5, 6, 7] {
            check_against_reference(
                crate::methods::Method::Bs,
                p,
                24,
                24,
                &DepthOrder::identity(p),
            );
        }
    }

    #[test]
    fn bs_single_rank_is_identity() {
        let images = test_images(1, 16, 16);
        let out = run_group(1, CostModel::free(), |ep| {
            let mut img = images[0].clone();
            let res = run(ep, &mut img, &DepthOrder::identity(1)).unwrap();
            assert_eq!(res.piece, OwnedPiece::Rect(Rect::new(0, 0, 16, 16)));
            img
        });
        assert_eq!(out.results[0], images[0]);
    }

    #[test]
    fn bs_bytes_match_equation_2() {
        // Equation (2): stage k transfers 16 · A/2^k bytes per processor.
        let p = 8;
        let (w, h) = (32u16, 32u16);
        let a = w as u64 * h as u64;
        let images = test_images(p, w, h);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            assert_eq!(stats.stages.len(), 3);
            for (k, stage) in stats.stages.iter().enumerate() {
                let expected = 16 * a / 2u64.pow(k as u32 + 1);
                assert_eq!(stage.sent_bytes, expected, "stage {k}");
                assert_eq!(stage.recv_bytes, expected, "stage {k}");
            }
        }
    }

    #[test]
    fn bs_final_regions_partition_image() {
        let p = 8;
        let images = test_images(p, 32, 32);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().piece
        });
        let mut total = 0usize;
        for piece in &out.results {
            match piece {
                OwnedPiece::Rect(r) => total += r.area(),
                other => panic!("unexpected piece {other:?}"),
            }
        }
        assert_eq!(total, 32 * 32);
    }
}
