//! Binary-swap with run-length encoding over **spatial** halves — an
//! ablation variant, not one of the paper's methods.
//!
//! BSLC (Section 3.3) combines two ideas: mask-RLE compression and the
//! interleaved (load-balanced) pixel distribution. BSRL keeps the RLE
//! but exchanges contiguous spatial halves like BS/BSBR, so comparing
//!
//! * BSRL vs BSLC isolates what *interleaving* buys (`M_max` balance on
//!   spatially concentrated content), and
//! * BSRL vs BSBRC isolates what the *bounding rectangle* buys
//!   (encoding `A_send` instead of the whole half).

use vr_comm::Endpoint;
use vr_image::{Image, MaskRle, Pixel};
use vr_volume::DepthOrder;

use crate::error::{try_exchange, CompositeError};
use crate::schedule::{fold_into_pow2, tags, FoldOutcome, RegionSplitter, VirtualTopology};
use crate::stats::StageStat;
use crate::wire::{MsgReader, MsgWriter};

use super::{CompositeResult, OwnedPiece, Run};

/// Runs BSRL. See the module docs.
pub fn run(
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<CompositeResult, CompositeError> {
    let mut run = Run::begin(ep);
    let topo = VirtualTopology::from_depth(ep.rank(), depth);
    let topo = match fold_into_pow2(
        ep,
        image,
        &topo,
        &mut run.comp,
        &mut run.stages,
        &mut run.dead,
    )? {
        FoldOutcome::Active(t) => t,
        FoldOutcome::Folded => return Ok(run.finish(ep, OwnedPiece::Nothing)),
    };

    let mut splitter = RegionSplitter::new(image.full_rect());
    for stage in 0..topo.stages() {
        let vpartner = topo.partner(stage);
        let partner = topo.real(vpartner);
        let (keep, send) = splitter.split(stage, topo.keeps_low(stage));

        // RLE over the whole sent half in row-major order.
        let (payload, ncodes) = run.encode.time(|| {
            let rle = MaskRle::encode_mask(send.iter().map(|(x, y)| !image.get(x, y).is_blank()));
            let mut w = MsgWriter::with_capacity(
                4 + rle.wire_bytes() + rle.non_blank_total() * vr_image::BYTES_PER_PIXEL,
            );
            w.put_u32(rle.num_codes() as u32);
            w.put_codes(rle.codes());
            let row_w = send.width() as usize;
            for (start, len) in rle.non_blank_runs() {
                for i in 0..len {
                    let pos = start + i;
                    let x = send.x0 + (pos % row_w) as u16;
                    let y = send.y0 + (pos / row_w) as u16;
                    w.put_pixel(image.get(x, y));
                }
            }
            (w.freeze(), rle.num_codes() as u64)
        });
        let mut stat = StageStat {
            sent_bytes: payload.len() as u64,
            sent_msgs: 1,
            encoded_pixels: send.area() as u64,
            run_codes: ncodes,
            ..Default::default()
        };

        stat.peer = Some(partner as u16);
        let received = try_exchange(
            ep,
            partner,
            tags::STAGE_BASE + stage as u32,
            payload,
            &mut run.dead,
            "BSRL stage",
        )?;

        if let Some(received) = received {
            stat.recv_bytes = received.len() as u64;
            stat.recv_msgs = 1;
            run.comp.time(|| {
                let mut r = MsgReader::new(received);
                let ncodes = r.get_u32() as usize;
                let rle = MaskRle::from_codes(r.get_codes(ncodes));
                let front = topo.received_is_front(vpartner);
                let row_w = keep.width() as usize;
                let mut ops = 0u64;
                for (start, len) in rle.non_blank_runs() {
                    for i in 0..len {
                        let pos = start + i;
                        let x = keep.x0 + (pos % row_w) as u16;
                        let y = keep.y0 + (pos / row_w) as u16;
                        let incoming: Pixel = r.get_pixel();
                        let local = image.get_mut(x, y);
                        *local = if front {
                            incoming.over(*local)
                        } else {
                            local.over(incoming)
                        };
                        ops += 1;
                    }
                }
                stat.composite_ops = ops;
            });
        }
        run.stages.push(stat);
    }

    Ok(run.finish(ep, OwnedPiece::Rect(splitter.region())))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{check_against_reference, test_images};
    use super::*;
    use crate::methods::Method;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn bsrl_matches_reference() {
        for p in [2, 4, 8, 16] {
            check_against_reference(Method::Bsrl, p, 32, 24, &DepthOrder::identity(p));
        }
    }

    #[test]
    fn bsrl_matches_reference_shuffled_depth_and_non_pow2() {
        let depth = DepthOrder::from_sequence(vec![4, 1, 3, 0, 2]);
        check_against_reference(Method::Bsrl, 5, 24, 28, &depth);
    }

    #[test]
    fn bsrl_encodes_full_halves_like_bslc() {
        // Equation (5) shape: stage k encodes A/2^k pixels.
        let p = 8;
        let (w, h) = (32u16, 32u16);
        let a = w as u64 * h as u64;
        let images = test_images(p, w, h);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            run(ep, &mut img, &depth).unwrap().stats
        });
        for stats in &out.results {
            for (k, stage) in stats.stages.iter().enumerate() {
                assert_eq!(stage.encoded_pixels, a / 2u64.pow(k as u32 + 1));
            }
        }
    }

    #[test]
    fn bsrl_is_unbalanced_on_concentrated_content_unlike_bslc() {
        // The ablation's point: with all content in the frame's left
        // half, BSRL (spatial halves) concentrates traffic on half the
        // ranks, while BSLC (interleaved) spreads it.
        let p = 4;
        let (w, h) = (32u16, 32u16);
        let images: Vec<Image> = (0..p)
            .map(|r| {
                Image::from_fn(w, h, |x, y| {
                    if x < w / 2 && (x + y + r as u16).is_multiple_of(2) {
                        Pixel::gray(0.5, 0.7)
                    } else {
                        Pixel::BLANK
                    }
                })
            })
            .collect();
        let depth = DepthOrder::identity(p);
        let m_max = |method: Method| {
            let out = run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                crate::methods::composite(method, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .recv_bytes()
            });
            *out.results.iter().max().unwrap()
        };
        let bsrl = m_max(Method::Bsrl);
        let bslc = m_max(Method::Bslc);
        assert!(
            (bslc as f64) < 0.75 * bsrl as f64,
            "interleaving should balance: BSLC {bslc} vs BSRL {bsrl}"
        );
    }
}
