//! Degraded-mode error handling for compositing runs.
//!
//! Under fault injection a rank can die mid-schedule. The methods treat a
//! *dead peer* as survivable: the survivor keeps its own partial image
//! and the dead rank's contribution becomes a transparent hole in the
//! final image (reported by the tolerant gather). Two conditions remain
//! hard errors: *this* rank being killed (it must stop participating),
//! and protocol-level failures such as receive timeouts or tag
//! mismatches, which indicate a broken schedule rather than a dead peer.

use std::collections::BTreeSet;

use bytes::Bytes;
use vr_comm::{CommError, Endpoint, RecvError, SendError, SendErrorKind, Tag};

/// Why a compositing run could not produce this rank's piece.
#[derive(Clone, Debug, PartialEq)]
pub enum CompositeError {
    /// This rank was killed by fault injection; its partial image is
    /// abandoned.
    Killed {
        /// The killed rank (this rank).
        rank: usize,
    },
    /// An unsurvivable communication failure — a receive timeout or tag
    /// mismatch, meaning the schedule itself broke down.
    Comm {
        /// Which protocol step failed (e.g. `"fold"`, `"bs stage"`).
        during: &'static str,
        /// The underlying transport error.
        source: CommError,
    },
}

impl CompositeError {
    /// True when a retry with a fresh fault-seed could plausibly
    /// succeed. `Comm` failures (timeouts, retry-budget exhaustion,
    /// tag mismatches under fault storms) re-draw their fault decisions
    /// on the next attempt; a `Killed` rank is structural — the kill
    /// spec fires deterministically regardless of seed, so retrying
    /// replays the same death.
    pub fn is_transient(&self) -> bool {
        matches!(self, CompositeError::Comm { .. })
    }
}

impl std::fmt::Display for CompositeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompositeError::Killed { rank } => {
                write!(f, "rank {rank} was killed by fault injection")
            }
            CompositeError::Comm { during, source } => {
                write!(f, "communication failed during {during}: {source}")
            }
        }
    }
}

impl std::error::Error for CompositeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompositeError::Killed { .. } => None,
            CompositeError::Comm { source, .. } => Some(source),
        }
    }
}

/// Sends `payload` to `peer`, tolerating a dead peer.
///
/// Returns `Ok(true)` if the message was handed to the transport,
/// `Ok(false)` if the peer is (or just turned out to be) dead — the
/// caller should skip that peer's slot. Errors only when this rank
/// itself was killed.
pub(crate) fn try_send(
    ep: &mut Endpoint,
    peer: usize,
    tag: Tag,
    payload: Bytes,
    dead: &mut BTreeSet<usize>,
    during: &'static str,
) -> Result<bool, CompositeError> {
    let _ = during;
    if dead.contains(&peer) {
        return Ok(false);
    }
    match ep.send(peer, tag, payload) {
        Ok(()) => Ok(true),
        Err(SendError {
            kind: SendErrorKind::Killed,
            ..
        }) => Err(CompositeError::Killed { rank: ep.rank() }),
        Err(SendError { to, .. }) => {
            // Disconnected or retry budget exhausted: the peer is gone.
            dead.insert(to);
            Ok(false)
        }
    }
}

/// Like [`try_send`], but stamps the message with `extra_secs` of extra
/// virtual latency (see `Endpoint::send_timed`) — the tile-stream path
/// uses this to model when each tile's render finished, so streamed
/// delivery order under the virtual clock is a pure function of the
/// seed. The real transport ignores the stamp.
pub(crate) fn try_send_timed(
    ep: &mut Endpoint,
    peer: usize,
    tag: Tag,
    payload: Bytes,
    extra_secs: f64,
    dead: &mut BTreeSet<usize>,
    during: &'static str,
) -> Result<bool, CompositeError> {
    let _ = during;
    if dead.contains(&peer) {
        return Ok(false);
    }
    match ep.send_timed(peer, tag, payload, extra_secs) {
        Ok(()) => Ok(true),
        Err(SendError {
            kind: SendErrorKind::Killed,
            ..
        }) => Err(CompositeError::Killed { rank: ep.rank() }),
        Err(SendError { to, .. }) => {
            dead.insert(to);
            Ok(false)
        }
    }
}

/// One survivable outcome of an any-source receive.
pub(crate) enum AnyRecv {
    /// A message arrived from `src`.
    Message(usize, Bytes),
    /// Awaited peer `src` disconnected (already added to `dead`); the
    /// caller should clear its await slot and keep going.
    PeerDied(usize),
}

/// Receives the next message from *any* awaited peer, tolerating dead
/// peers. Timeouts and tag mismatches remain hard errors.
pub(crate) fn try_recv_any(
    ep: &mut Endpoint,
    await_from: &[bool],
    tag: Tag,
    dead: &mut BTreeSet<usize>,
    during: &'static str,
) -> Result<AnyRecv, CompositeError> {
    match ep.recv_any(await_from, tag) {
        Ok((src, bytes)) => Ok(AnyRecv::Message(src, bytes)),
        Err(RecvError::Killed { rank }) => Err(CompositeError::Killed { rank }),
        Err(RecvError::Disconnected { from }) => {
            dead.insert(from);
            Ok(AnyRecv::PeerDied(from))
        }
        Err(e) => Err(CompositeError::Comm {
            during,
            source: e.into(),
        }),
    }
}

/// Receives from `peer`, tolerating a dead peer.
///
/// Returns `Ok(None)` when the peer is dead (already known dead, or its
/// endpoint disconnected while we waited) — the caller keeps its own
/// partial and moves on. Timeouts and tag mismatches are hard errors.
pub(crate) fn try_recv(
    ep: &mut Endpoint,
    peer: usize,
    tag: Tag,
    dead: &mut BTreeSet<usize>,
    during: &'static str,
) -> Result<Option<Bytes>, CompositeError> {
    if dead.contains(&peer) {
        return Ok(None);
    }
    match ep.recv(peer, tag) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(RecvError::Killed { rank }) => Err(CompositeError::Killed { rank }),
        Err(RecvError::Disconnected { from }) => {
            dead.insert(from);
            Ok(None)
        }
        Err(e) => Err(CompositeError::Comm {
            during,
            source: e.into(),
        }),
    }
}

/// The binary-swap primitive: send our half to `peer` and receive theirs,
/// tolerating a dead partner.
///
/// Returns `Ok(None)` when the partner is dead; the survivor keeps its
/// own half (the partner's half becomes a hole in the final image).
pub(crate) fn try_exchange(
    ep: &mut Endpoint,
    peer: usize,
    tag: Tag,
    payload: Bytes,
    dead: &mut BTreeSet<usize>,
    during: &'static str,
) -> Result<Option<Bytes>, CompositeError> {
    if !try_send(ep, peer, tag, payload, dead, during)? {
        return Ok(None);
    }
    try_recv(ep, peer, tag, dead, during)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_comm::{run_group, CostModel};

    #[test]
    fn display_names_the_step() {
        let e = CompositeError::Comm {
            during: "fold",
            source: CommError::Recv(RecvError::Disconnected { from: 3 }),
        };
        let msg = format!("{e}");
        assert!(msg.contains("fold"), "{msg}");
        let k = CompositeError::Killed { rank: 2 };
        assert!(format!("{k}").contains("rank 2"));
    }

    #[test]
    fn comm_is_transient_killed_is_structural() {
        let comm = CompositeError::Comm {
            during: "bs stage",
            source: CommError::Recv(RecvError::Disconnected { from: 1 }),
        };
        assert!(comm.is_transient());
        assert!(!CompositeError::Killed { rank: 0 }.is_transient());
    }

    #[test]
    fn try_exchange_with_dead_peer_returns_none_and_marks_dead() {
        let out = run_group(2, CostModel::free(), |ep| {
            if ep.rank() == 1 {
                // Exit immediately: rank 0 sees a disconnected peer.
                return (true, true);
            }
            let mut dead = BTreeSet::new();
            let got = try_exchange(
                ep,
                1,
                7,
                Bytes::from_static(b"half"),
                &mut dead,
                "test stage",
            )
            .unwrap();
            (got.is_none(), dead.contains(&1))
        });
        assert_eq!(out.results[0], (true, true));
    }

    #[test]
    fn try_send_skips_already_dead_peer() {
        let out = run_group(1, CostModel::free(), |ep| {
            let mut dead = BTreeSet::new();
            dead.insert(5);
            // Peer index is never touched when already marked dead.
            try_send(ep, 5, 0, Bytes::new(), &mut dead, "t").unwrap()
        });
        assert_eq!(out.results, vec![false]);
    }
}
