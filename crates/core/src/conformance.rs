//! Differential conformance harness: every compositing method against
//! the sequential reference, under deterministic virtual-time schedules.
//!
//! The paper's central claim is that BSBR/BSLC/BSBRC produce the *same
//! image* as plain binary-swap while moving fewer bytes (Equations (2),
//! (4), (6) and (8)). This module packages that claim as a reusable
//! oracle:
//!
//! * [`run_case`] executes one `(method, P, workload, depth, schedule,
//!   faults)` configuration through the real distributed runtime and
//!   reports the gathered image, its hash, the deviation from
//!   [`reference_composite`], and the schedule trace;
//! * [`expected_traffic`] computes, *without running the methods*, the
//!   exact per-stage byte counts the four paper methods must put on the
//!   wire — bounding rectangles evolve by pure rectangle algebra and
//!   non-blank masks by exact `OR` (the `over` operator never blanks a
//!   non-blank pixel, and never un-blanks a blank one);
//! * [`CorpusEntry`] round-trips a failing `(case, seed, prefix)` into
//!   one line of a checked-in regression corpus that replays the exact
//!   schedule and asserts the exact image hash.

use std::fmt;
use std::str::FromStr;

use vr_comm::{
    run_group_with, CostModel, FaultConfig, GroupOptions, ReliabilityConfig, ScheduleSpec,
    ScheduleTrace,
};
use vr_image::{Image, MaskRle, Pixel, Rect, StridedSeq};
use vr_volume::DepthOrder;

use crate::gather::gather_image_tolerant;
use crate::methods::{composite, Method};
use crate::reference::reference_composite;
use crate::schedule::RegionSplitter;
use crate::stats::MethodStats;

/// Deterministic synthetic workloads for conformance runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Each rank covers a diagonal stripe plus a small blob — the sparse
    /// regime the paper's methods are designed for.
    Sparse,
    /// Every pixel of every rank is non-blank — the worst case where
    /// BSBR/BSLC/BSBRC degenerate to (slightly worse than) plain BS.
    Dense,
    /// Each rank fills one horizontal band — disjoint footprints with
    /// empty-rectangle stages, exercising the `[B(k)] = 0` branches.
    Bands,
}

impl Workload {
    /// All workloads, in corpus-name order.
    pub fn all() -> [Workload; 3] {
        [Workload::Sparse, Workload::Dense, Workload::Bands]
    }

    /// The corpus token for this workload.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Sparse => "sparse",
            Workload::Dense => "dense",
            Workload::Bands => "bands",
        }
    }

    /// Builds the `P` per-rank subimages for this workload.
    ///
    /// Non-blank pixels always carry strictly positive alpha, which is
    /// what makes the non-blank mask of any `over` composition the exact
    /// `OR` of the contributing masks (see [`expected_traffic`]).
    pub fn images(self, p: usize, width: u16, height: u16) -> Vec<Image> {
        (0..p)
            .map(|r| {
                Image::from_fn(width, height, |x, y| match self {
                    Workload::Sparse => {
                        let stripe = (x as usize + y as usize * 3 + r * 7) % (p * 4) < 3;
                        let blob = {
                            let cx = (r * 13 + 5) % width as usize;
                            let cy = (r * 29 + 11) % height as usize;
                            let dx = x as i32 - cx as i32;
                            let dy = y as i32 - cy as i32;
                            dx * dx + dy * dy < 30
                        };
                        if stripe || blob {
                            Pixel::gray(
                                0.2 + 0.6 * (r as f32 / p as f32),
                                0.25 + 0.5 * (r as f32 / p as f32),
                            )
                        } else {
                            Pixel::BLANK
                        }
                    }
                    Workload::Dense => Pixel::gray(
                        0.1 + 0.8 * ((x as usize + y as usize + r) % 17) as f32 / 17.0,
                        0.3 + 0.4 * (r as f32 / p.max(1) as f32),
                    ),
                    Workload::Bands => {
                        let h = height as usize;
                        let y0 = r * h / p;
                        let y1 = (r + 1) * h / p;
                        if (y as usize) >= y0 && (y as usize) < y1 {
                            Pixel::gray(0.15 + 0.7 * (r as f32 / p as f32), 0.9)
                        } else {
                            Pixel::BLANK
                        }
                    }
                })
            })
            .collect()
    }
}

/// The communication cost model of a conformance case, by name (the
/// corpus stores names, not floats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostKind {
    /// Zero latency and bandwidth cost: every send is ready at the same
    /// virtual instant, maximising schedule choice points.
    Free,
    /// The paper's SP2 High Performance Switch calibration.
    Sp2,
}

impl CostKind {
    /// The corpus token.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::Free => "free",
            CostKind::Sp2 => "sp2",
        }
    }

    /// The actual cost model.
    pub fn model(self) -> CostModel {
        match self {
            CostKind::Free => CostModel::free(),
            CostKind::Sp2 => CostModel::sp2(),
        }
    }
}

/// One fully-specified conformance configuration.
#[derive(Clone, Debug)]
pub struct ConformanceCase {
    /// Compositing method under test.
    pub method: Method,
    /// Number of ranks.
    pub p: usize,
    /// Image width.
    pub width: u16,
    /// Image height.
    pub height: u16,
    /// Synthetic workload.
    pub workload: Workload,
    /// Front-to-back visibility order over the ranks.
    pub depth: DepthOrder,
    /// Run the reliable (framed, acked) transport instead of raw.
    pub reliable: bool,
    /// Fault-injection campaign, if any.
    pub faults: Option<FaultConfig>,
    /// Communication cost model.
    pub cost: CostKind,
    /// Virtual-time schedule; `None` runs in real time.
    pub schedule: Option<ScheduleSpec>,
}

impl ConformanceCase {
    /// A healthy raw-mode case under a seeded virtual schedule.
    pub fn new(method: Method, p: usize, workload: Workload, seed: u64) -> Self {
        ConformanceCase {
            method,
            p,
            width: 32,
            height: 24,
            workload,
            depth: DepthOrder::identity(p),
            reliable: false,
            faults: None,
            cost: CostKind::Free,
            schedule: Some(ScheduleSpec::seeded(seed)),
        }
    }

    /// The per-rank input subimages for this case.
    pub fn images(&self) -> Vec<Image> {
        self.workload.images(self.p, self.width, self.height)
    }

    /// The sequential reference image for this case.
    pub fn reference(&self) -> Image {
        reference_composite(&self.images(), &self.depth)
    }
}

/// What one conformance run produced.
#[derive(Clone, Debug)]
pub struct ConformanceOutcome {
    /// The image gathered at rank 0 (`None` when rank 0 died).
    pub image: Option<Image>,
    /// FNV-1a hash of the gathered image bytes (0 when absent) — the
    /// bit-exactness witness used for schedule-independence and corpus
    /// replay.
    pub image_hash: u64,
    /// Maximum absolute channel difference against the sequential
    /// reference (`f32::INFINITY` when no image was gathered).
    pub max_diff: f32,
    /// Fraction of pixels covered by surviving pieces.
    pub coverage: f64,
    /// Ranks whose pieces never reached the gather root.
    pub missing_ranks: Vec<usize>,
    /// Ranks killed by fault injection.
    pub dead_ranks: Vec<usize>,
    /// Per-rank method statistics (`None` for ranks whose composite
    /// errored out, e.g. killed ranks).
    pub per_rank: Vec<Option<MethodStats>>,
    /// The schedule the run took, when it ran under virtual time.
    pub schedule: Option<ScheduleTrace>,
}

/// Runs one conformance case through the real distributed runtime.
pub fn run_case(case: &ConformanceCase) -> ConformanceOutcome {
    let images = case.images();
    let reference = reference_composite(&images, &case.depth);
    let options = GroupOptions {
        cost: case.cost.model(),
        faults: case.faults,
        reliability: if case.reliable {
            ReliabilityConfig::on()
        } else {
            ReliabilityConfig::default()
        },
        schedule: case.schedule.clone(),
        ..Default::default()
    };
    let depth = &case.depth;
    let out = run_group_with(case.p, options, |ep| {
        let mut img = images[ep.rank()].clone();
        match composite(case.method, ep, &mut img, depth) {
            Ok(result) => {
                let stats = result.stats.clone();
                let gathered = gather_image_tolerant(ep, &img, &result.piece, 0)
                    .ok()
                    .flatten();
                (Some(stats), gathered)
            }
            // Killed mid-composite (or schedule breakdown): this rank
            // contributes nothing; survivors keep going.
            Err(_) => (None, None),
        }
    });

    let mut per_rank = Vec::with_capacity(case.p);
    let mut gathered = None;
    for (rank, (stats, g)) in out.results.into_iter().enumerate() {
        per_rank.push(stats);
        if rank == 0 {
            gathered = g;
        }
    }
    let (image, coverage, missing_ranks) = match gathered {
        Some(g) => {
            let coverage = g.coverage();
            (Some(g.image), coverage, g.missing_ranks)
        }
        None => (None, 0.0, (0..case.p).collect()),
    };
    let image_hash = image.as_ref().map_or(0, vr_image::checksum::fnv1a);
    let max_diff = image
        .as_ref()
        .map_or(f32::INFINITY, |img| img.max_abs_diff(&reference));
    ConformanceOutcome {
        image,
        image_hash,
        max_diff,
        coverage,
        missing_ranks,
        dead_ranks: out.dead_ranks,
        per_rank,
        schedule: out.schedule,
    }
}

/// Exact per-stage wire bytes the paper's four methods must move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpectedTraffic {
    /// `sent[rank][stage]`: payload bytes rank sends at that stage.
    pub sent: Vec<Vec<u64>>,
    /// `recv[rank][stage]`: payload bytes rank receives at that stage
    /// (its partner's `sent`).
    pub recv: Vec<Vec<u64>>,
}

impl ExpectedTraffic {
    /// Modeled per-rank `T_comm` under `cost`: one message per stage,
    /// `T_s + bytes · T_c` each — exactly what the endpoint charges.
    pub fn comm_seconds(&self, cost: CostModel) -> Vec<f64> {
        self.recv
            .iter()
            .map(|stages| {
                stages
                    .iter()
                    .map(|&b| cost.message_seconds(b as usize))
                    .sum()
            })
            .collect()
    }
}

/// Computes the exact bytes each rank sends and receives per binary-swap
/// stage for BS, BSBR, BSLC and BSBRC — the closed forms behind the
/// paper's Equations (2), (4), (6) and (8) — from the subimages alone.
///
/// The derivation never composites a pixel: the non-blank mask of any
/// partial composite is the exact `OR` of its contributors' masks
/// (`over` keeps `alpha = 0` iff both inputs are blank, given non-blank
/// pixels carry positive alpha), and BSBR's rectangles evolve by the
/// algorithm's own O(1) rule `bounds ← (bounds ∩ keep) ∪ recv_rect`.
///
/// Returns `None` for methods outside the paper's four or when `P` is
/// not a power of two (the fold prologue would add a non-equation
/// stage).
pub fn expected_traffic(
    method: Method,
    images: &[Image],
    depth: &DepthOrder,
) -> Option<ExpectedTraffic> {
    let p = images.len();
    if !p.is_power_of_two() {
        return None;
    }
    let stages = p.trailing_zeros() as usize;
    let order = depth.front_to_back();
    assert_eq!(order.len(), p, "depth order must cover the group");
    let width = images[0].width();
    let area = images[0].area();
    let full = images[0].full_rect();
    let keeps_low = |v: usize, k: usize| (v >> k) & 1 == 0;

    // Per-VIRTUAL-rank evolving state.
    let mut splitters: Vec<RegionSplitter> = (0..p).map(|_| RegionSplitter::new(full)).collect();
    let mut bounds: Vec<Rect> = (0..p).map(|v| images[order[v]].bounding_rect()).collect();
    let mut masks: Vec<Vec<bool>> = (0..p)
        .map(|v| {
            images[order[v]]
                .pixels()
                .iter()
                .map(|px| !px.is_blank())
                .collect()
        })
        .collect();
    let mut seqs: Vec<StridedSeq> = (0..p).map(|_| StridedSeq::dense(area)).collect();

    let mut sent = vec![vec![0u64; stages]; p]; // indexed by vrank for now
    let mut recv = vec![vec![0u64; stages]; p];

    for k in 0..stages {
        // Phase 1: every rank's send bytes from its PRE-stage state.
        let mut halves: Vec<(Rect, Rect)> = Vec::with_capacity(p); // (keep, send)
        let mut seq_halves: Vec<(StridedSeq, StridedSeq)> = Vec::with_capacity(p);
        for v in 0..p {
            let (keep, send) = splitters[v].split(k, keeps_low(v, k));
            halves.push((keep, send));
            let (even, odd) = seqs[v].split();
            let (kseq, sseq) = if keeps_low(v, k) {
                (even, odd)
            } else {
                (odd, even)
            };
            seq_halves.push((kseq, sseq));
            sent[v][k] = match method {
                Method::Bs => (send.area() * vr_image::BYTES_PER_PIXEL) as u64,
                Method::Bsbr => {
                    let sb = bounds[v].intersect(&send);
                    (vr_image::rect::BYTES_PER_RECT
                        + if sb.is_empty() {
                            0
                        } else {
                            sb.area() * vr_image::BYTES_PER_PIXEL
                        }) as u64
                }
                Method::Bslc => {
                    let rle = MaskRle::encode_mask(sseq.iter().map(|i| masks[v][i]));
                    (4 + rle.wire_bytes() + rle.non_blank_total() * vr_image::BYTES_PER_PIXEL)
                        as u64
                }
                Method::Bsbrc => {
                    let sb = bounds[v].intersect(&send);
                    (vr_image::rect::BYTES_PER_RECT
                        + if sb.is_empty() {
                            0
                        } else {
                            let rle =
                                MaskRle::encode_mask(sb.iter().map(|(x, y)| {
                                    masks[v][y as usize * width as usize + x as usize]
                                }));
                            4 + rle.wire_bytes() + rle.non_blank_total() * vr_image::BYTES_PER_PIXEL
                        }) as u64
                }
                _ => return None,
            };
        }
        // Phase 2: simultaneous state update from both partners'
        // pre-stage state.
        let prev_bounds = bounds.clone();
        let prev_masks = masks.clone();
        for v in 0..p {
            let u = v ^ (1 << k);
            recv[v][k] = sent[u][k];
            let (keep, _) = halves[v];
            bounds[v] = prev_bounds[v]
                .intersect(&keep)
                .union(&prev_bounds[u].intersect(&keep));
            // Full-mask OR is sound: positions outside this rank's kept
            // region are never read by any later stage.
            for (m, o) in masks[v].iter_mut().zip(&prev_masks[u]) {
                *m = *m || *o;
            }
            seqs[v] = seq_halves[v].0;
        }
    }

    // Re-index by REAL rank.
    let mut sent_real = vec![Vec::new(); p];
    let mut recv_real = vec![Vec::new(); p];
    for v in 0..p {
        sent_real[order[v]] = std::mem::take(&mut sent[v]);
        recv_real[order[v]] = std::mem::take(&mut recv[v]);
    }
    Some(ExpectedTraffic {
        sent: sent_real,
        recv: recv_real,
    })
}

/// One line of the conformance regression corpus: a complete case plus
/// the exact image hash and schedule-decision digest it must reproduce.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// Method under test.
    pub method: Method,
    /// Rank count.
    pub p: usize,
    /// Image width.
    pub width: u16,
    /// Image height.
    pub height: u16,
    /// Workload name.
    pub workload: Workload,
    /// Front-to-back depth permutation.
    pub depth: Vec<usize>,
    /// Reliable transport on.
    pub reliable: bool,
    /// Fault spec in the CLI grammar (`drop=..,seed=..,kill=R@N`), if any.
    pub faults: Option<String>,
    /// Cost model name.
    pub cost: CostKind,
    /// Schedule seed.
    pub seed: u64,
    /// Forced schedule prefix.
    pub prefix: Vec<u32>,
    /// Required FNV-1a hash of the gathered image.
    pub expect_image: u64,
    /// Required [`ScheduleTrace::digest`] of the decision log.
    pub expect_decisions: u64,
}

impl CorpusEntry {
    /// Builds the runnable case this entry describes.
    pub fn to_case(&self) -> ConformanceCase {
        ConformanceCase {
            method: self.method,
            p: self.p,
            width: self.width,
            height: self.height,
            workload: self.workload,
            depth: DepthOrder::from_sequence(self.depth.clone()),
            reliable: self.reliable,
            faults: self.faults.as_deref().map(|s| {
                s.parse::<FaultConfig>()
                    .expect("corpus entry carries an invalid fault spec")
            }),
            cost: self.cost,
            schedule: Some(ScheduleSpec {
                seed: self.seed,
                prefix: self.prefix.clone(),
            }),
        }
    }

    /// Captures a finished run as a corpus entry (hashes filled in).
    pub fn from_run(
        case: &ConformanceCase,
        faults_spec: Option<&str>,
        out: &ConformanceOutcome,
    ) -> Self {
        let spec = case.schedule.clone().unwrap_or_default();
        CorpusEntry {
            method: case.method,
            p: case.p,
            width: case.width,
            height: case.height,
            workload: case.workload,
            depth: case.depth.front_to_back().to_vec(),
            reliable: case.reliable,
            faults: faults_spec.map(str::to_owned),
            cost: case.cost,
            seed: spec.seed,
            prefix: spec.prefix,
            expect_image: out.image_hash,
            expect_decisions: out.schedule.as_ref().map_or(0, ScheduleTrace::digest),
        }
    }

    /// Replays the entry and checks both digests. `Ok` means the exact
    /// image bytes and the exact schedule path were reproduced.
    pub fn verify(&self) -> Result<(), String> {
        let out = run_case(&self.to_case());
        let decisions = out.schedule.as_ref().map_or(0, ScheduleTrace::digest);
        if out.image_hash != self.expect_image {
            return Err(format!(
                "image hash {:016x} != expected {:016x} for `{self}`",
                out.image_hash, self.expect_image
            ));
        }
        if decisions != self.expect_decisions {
            return Err(format!(
                "decision digest {decisions:016x} != expected {:016x} for `{self}`",
                self.expect_decisions
            ));
        }
        Ok(())
    }
}

fn method_from_name(s: &str) -> Option<Method> {
    Method::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(s))
}

impl fmt::Display for CorpusEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let depth: Vec<String> = self.depth.iter().map(|r| r.to_string()).collect();
        let prefix = if self.prefix.is_empty() {
            "-".to_owned()
        } else {
            self.prefix
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(":")
        };
        write!(
            f,
            "method={} p={} w={} h={} workload={} depth={} reliable={} faults={} cost={} \
             seed={} prefix={} expect_image={:016x} expect_decisions={:016x}",
            self.method.name(),
            self.p,
            self.width,
            self.height,
            self.workload.name(),
            depth.join(":"),
            u8::from(self.reliable),
            self.faults.as_deref().unwrap_or("-"),
            self.cost.name(),
            self.seed,
            prefix,
            self.expect_image,
            self.expect_decisions,
        )
    }
}

impl FromStr for CorpusEntry {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, String> {
        let mut method = None;
        let mut p = None;
        let mut width = None;
        let mut height = None;
        let mut workload = None;
        let mut depth = None;
        let mut reliable = false;
        let mut faults = None;
        let mut cost = CostKind::Free;
        let mut seed = 0u64;
        let mut prefix = Vec::new();
        let mut expect_image = None;
        let mut expect_decisions = None;
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("token `{token}` is not key=value"))?;
            let bad = |what: &str| format!("invalid {what} `{value}`");
            match key {
                "method" => {
                    method = Some(method_from_name(value).ok_or_else(|| bad("method"))?);
                }
                "p" => p = Some(value.parse().map_err(|_| bad("p"))?),
                "w" => width = Some(value.parse().map_err(|_| bad("w"))?),
                "h" => height = Some(value.parse().map_err(|_| bad("h"))?),
                "workload" => {
                    workload = Some(
                        Workload::all()
                            .into_iter()
                            .find(|w| w.name() == value)
                            .ok_or_else(|| bad("workload"))?,
                    );
                }
                "depth" => {
                    depth = Some(
                        value
                            .split(':')
                            .map(|t| t.parse().map_err(|_| bad("depth")))
                            .collect::<Result<Vec<usize>, _>>()?,
                    );
                }
                "reliable" => reliable = value == "1",
                "faults" => {
                    if value != "-" {
                        // Validate eagerly so a corrupt corpus line fails
                        // at parse time, not replay time.
                        value
                            .parse::<FaultConfig>()
                            .map_err(|e| format!("invalid faults `{value}`: {e}"))?;
                        faults = Some(value.to_owned());
                    }
                }
                "cost" => {
                    cost = match value {
                        "free" => CostKind::Free,
                        "sp2" => CostKind::Sp2,
                        _ => return Err(bad("cost")),
                    };
                }
                "seed" => seed = value.parse().map_err(|_| bad("seed"))?,
                "prefix" => {
                    if value != "-" {
                        prefix = value
                            .split(':')
                            .map(|t| t.parse().map_err(|_| bad("prefix")))
                            .collect::<Result<Vec<u32>, _>>()?;
                    }
                }
                "expect_image" => {
                    expect_image =
                        Some(u64::from_str_radix(value, 16).map_err(|_| bad("expect_image"))?);
                }
                "expect_decisions" => {
                    expect_decisions =
                        Some(u64::from_str_radix(value, 16).map_err(|_| bad("expect_decisions"))?);
                }
                other => return Err(format!("unknown corpus key `{other}`")),
            }
        }
        let p = p.ok_or("missing p")?;
        Ok(CorpusEntry {
            method: method.ok_or("missing method")?,
            p,
            width: width.ok_or("missing w")?,
            height: height.ok_or("missing h")?,
            workload: workload.ok_or("missing workload")?,
            depth: depth.unwrap_or_else(|| (0..p).collect()),
            reliable,
            faults,
            cost,
            seed,
            prefix,
            expect_image: expect_image.ok_or("missing expect_image")?,
            expect_decisions: expect_decisions.ok_or("missing expect_decisions")?,
        })
    }
}

/// Parses every corpus entry in a file's contents, skipping blank lines
/// and `#` comments.
pub fn parse_corpus(contents: &str) -> Result<Vec<CorpusEntry>, String> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().map_err(|e| format!("{e} (line: `{l}`)")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_sparsity() {
        for p in [2, 4] {
            let dense = Workload::Dense.images(p, 16, 12);
            assert!(dense.iter().all(|img| img.non_blank_count() == img.area()));
            let sparse = Workload::Sparse.images(p, 16, 12);
            assert!(sparse
                .iter()
                .all(|img| img.non_blank_count() > 0 && img.non_blank_count() < img.area()));
            let bands = Workload::Bands.images(p, 16, 12);
            let total: usize = bands.iter().map(Image::non_blank_count).sum();
            assert_eq!(total, 16 * 12, "bands tile the image disjointly");
        }
    }

    #[test]
    fn run_case_healthy_bsbrc_matches_reference() {
        let case = ConformanceCase::new(Method::Bsbrc, 4, Workload::Sparse, 1);
        let out = run_case(&case);
        assert!(out.max_diff < 2e-4, "diff {}", out.max_diff);
        assert_eq!(out.coverage, 1.0);
        assert!(out.dead_ranks.is_empty());
        assert!(out.schedule.is_some());
        assert_ne!(out.image_hash, 0);
    }

    #[test]
    fn expected_traffic_matches_bs_closed_form() {
        // Equation (2): stage k of BS moves 16·A/2^(k+1) bytes per rank.
        let images = Workload::Dense.images(8, 32, 16);
        let t = expected_traffic(Method::Bs, &images, &DepthOrder::identity(8)).unwrap();
        let area = 32usize * 16;
        for stages in &t.sent {
            for (k, &bytes) in stages.iter().enumerate() {
                assert_eq!(bytes, (16 * area / (1 << (k + 1))) as u64);
            }
        }
    }

    #[test]
    fn expected_traffic_matches_real_runs_for_paper_methods() {
        for method in Method::paper_methods() {
            for workload in Workload::all() {
                let case = ConformanceCase {
                    depth: DepthOrder::from_sequence(vec![2, 0, 3, 1]),
                    ..ConformanceCase::new(method, 4, workload, 3)
                };
                let expect = expected_traffic(method, &case.images(), &case.depth).unwrap();
                let out = run_case(&case);
                for (rank, stats) in out.per_rank.iter().enumerate() {
                    let stats = stats.as_ref().unwrap();
                    let sent: Vec<u64> = stats.stages.iter().map(|s| s.sent_bytes).collect();
                    let recv: Vec<u64> = stats.stages.iter().map(|s| s.recv_bytes).collect();
                    assert_eq!(
                        sent, expect.sent[rank],
                        "{method:?} {workload:?} rank {rank} sent bytes"
                    );
                    assert_eq!(
                        recv, expect.recv[rank],
                        "{method:?} {workload:?} rank {rank} recv bytes"
                    );
                }
            }
        }
    }

    #[test]
    fn corpus_entry_round_trips() {
        let entry = CorpusEntry {
            method: Method::Bslc,
            p: 8,
            width: 32,
            height: 24,
            workload: Workload::Sparse,
            depth: vec![7, 3, 5, 1, 6, 2, 4, 0],
            reliable: true,
            faults: Some("drop=0.1,seed=9".to_owned()),
            cost: CostKind::Sp2,
            seed: 42,
            prefix: vec![1, 0, 2],
            expect_image: 0xDEAD_BEEF_0BAD_F00D,
            expect_decisions: 0x0123_4567_89AB_CDEF,
        };
        let line = entry.to_string();
        let parsed: CorpusEntry = line.parse().unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn corpus_rejects_garbage() {
        assert!("method=BS p=2".parse::<CorpusEntry>().is_err());
        assert!("nonsense".parse::<CorpusEntry>().is_err());
        assert!(parse_corpus("# comment\n\nmethod=NOPE p=2").is_err());
    }
}
