//! Final gather: assembling owned pieces into the full image at a root
//! rank (the sort-last system's display step).

use vr_comm::Endpoint;
use vr_image::{Image, StridedSeq};
use vr_volume::DepthOrder;

use crate::error::CompositeError;
use crate::methods::OwnedPiece;
use crate::schedule::tags;
use crate::wire::{MsgReader, MsgWriter};

const KIND_NOTHING: u32 = 0;
const KIND_RECT: u32 = 1;
const KIND_SEQ: u32 = 2;
const KIND_WHOLE: u32 = 3;
const KIND_RECTS: u32 = 4;

/// Encodes a rank's owned piece (with its pixel data) for the gather.
fn encode_piece(image: &Image, piece: &OwnedPiece) -> bytes::Bytes {
    let mut w = MsgWriter::new();
    match piece {
        OwnedPiece::Nothing => w.put_u32(KIND_NOTHING),
        OwnedPiece::Rect(r) => {
            w.put_u32(KIND_RECT);
            w.put_rect(*r);
            w.put_pixels(&image.extract_rect(r));
        }
        OwnedPiece::Seq(seq) => {
            w.put_u32(KIND_SEQ);
            w.put_u32(seq.start as u32);
            w.put_u32(seq.stride as u32);
            w.put_u32(seq.count as u32);
            for idx in seq.iter() {
                w.put_pixel(image.pixels()[idx]);
            }
        }
        OwnedPiece::Whole => {
            w.put_u32(KIND_WHOLE);
            w.put_pixels(image.pixels());
        }
        OwnedPiece::Rects(rects) => {
            w.put_u32(KIND_RECTS);
            w.put_u32(rects.len() as u32);
            for r in rects {
                w.put_rect(*r);
                w.put_pixels(&image.extract_rect(r));
            }
        }
    }
    w.freeze()
}

/// Writes one encoded piece into `out`, returning the pixel count it
/// covered.
fn apply_piece(out: &mut Image, bytes: bytes::Bytes) -> usize {
    let mut r = MsgReader::new(bytes);
    match r.get_u32() {
        KIND_NOTHING => 0,
        KIND_RECT => {
            let rect = r.get_rect();
            let pixels = r.get_pixels(rect.area());
            out.write_rect(&rect, &pixels);
            rect.area()
        }
        KIND_SEQ => {
            let seq = StridedSeq {
                start: r.get_u32() as usize,
                stride: r.get_u32() as usize,
                count: r.get_u32() as usize,
            };
            for idx in seq.iter() {
                out.pixels_mut()[idx] = r.get_pixel();
            }
            seq.count
        }
        KIND_WHOLE => {
            let pixels = r.get_pixels(out.area());
            let full = out.full_rect();
            out.write_rect(&full, &pixels);
            out.area()
        }
        KIND_RECTS => {
            let count = r.get_u32() as usize;
            let mut covered = 0usize;
            for _ in 0..count {
                let rect = r.get_rect();
                let pixels = r.get_pixels(rect.area());
                out.write_rect(&rect, &pixels);
                covered += rect.area();
            }
            covered
        }
        other => panic!("unknown gather piece kind {other}"),
    }
}

/// Sends this rank's owned piece to `root` and, at the root, assembles
/// the final image from all pieces. Returns `Some(image)` at the root.
///
/// Panics if the gather fails or the pieces do not tile the image —
/// use [`gather_image_tolerant`] when ranks may have died.
pub fn gather_image(
    ep: &mut Endpoint,
    image: &Image,
    piece: &OwnedPiece,
    root: usize,
) -> Option<Image> {
    let payload = encode_piece(image, piece);
    let all = ep
        .gather(root, tags::GATHER, payload)
        .unwrap_or_else(|e| panic!("gather failed: {e}"))?;

    let mut out = Image::blank(image.width(), image.height());
    let mut covered = 0usize;
    for bytes in all {
        covered += apply_piece(&mut out, bytes);
    }
    assert_eq!(
        covered,
        out.area(),
        "gathered pieces must tile the image exactly"
    );
    Some(out)
}

/// A gathered image that may be missing contributions from dead ranks.
#[derive(Debug, Clone)]
pub struct GatheredImage {
    /// The assembled image; regions owned by dead ranks stay blank.
    pub image: Image,
    /// Ranks whose pieces never arrived (dead or disconnected).
    pub missing_ranks: Vec<usize>,
    /// Pixels actually written by surviving pieces.
    pub covered_pixels: usize,
}

impl GatheredImage {
    /// Fraction of the image covered by surviving pieces, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.image.area() == 0 {
            1.0
        } else {
            self.covered_pixels as f64 / self.image.area() as f64
        }
    }
}

/// Fault-tolerant gather: like [`gather_image`] but a dead contributor
/// leaves a hole instead of panicking. Returns `Some` only at the root;
/// a dead root means nobody assembles (`Ok(None)` everywhere).
pub fn gather_image_tolerant(
    ep: &mut Endpoint,
    image: &Image,
    piece: &OwnedPiece,
    root: usize,
) -> Result<Option<GatheredImage>, CompositeError> {
    let payload = encode_piece(image, piece);
    let all = ep
        .gather_tolerant(root, tags::GATHER, payload)
        .map_err(|e| {
            if e.is_self_killed() {
                CompositeError::Killed { rank: ep.rank() }
            } else {
                CompositeError::Comm {
                    during: "gather",
                    source: e,
                }
            }
        })?;
    let Some(all) = all else { return Ok(None) };

    let mut out = Image::blank(image.width(), image.height());
    let mut covered = 0usize;
    let mut missing = Vec::new();
    for (rank, slot) in all.into_iter().enumerate() {
        match slot {
            Some(bytes) => covered += apply_piece(&mut out, bytes),
            None => missing.push(rank),
        }
    }
    Ok(Some(GatheredImage {
        image: out,
        missing_ranks: missing,
        covered_pixels: covered,
    }))
}

/// Convenience used by tests and examples: composites with `method` and
/// gathers at rank 0, returning the final image there.
pub fn composite_and_gather(
    method: crate::methods::Method,
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> Result<(Option<Image>, crate::stats::MethodStats), CompositeError> {
    let result = crate::methods::composite(method, ep, image, depth)?;
    let gathered = gather_image(ep, image, &result.piece, 0);
    Ok((gathered, result.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_comm::{run_group, CostModel};
    use vr_image::{Pixel, Rect};

    #[test]
    fn gather_rect_pieces() {
        let out = run_group(4, CostModel::free(), |ep| {
            let mut img = Image::blank(8, 8);
            // Each rank owns two rows and paints them with its rank value.
            let rect = Rect::new(0, ep.rank() as u16 * 2, 8, ep.rank() as u16 * 2 + 2);
            for (x, y) in rect.iter() {
                img.set(x, y, Pixel::gray(ep.rank() as f32 / 4.0, 1.0));
            }
            gather_image(ep, &img, &OwnedPiece::Rect(rect), 0)
        });
        let img = out.results[0].as_ref().unwrap();
        assert_eq!(img.get(3, 0).r, 0.0);
        assert_eq!(img.get(3, 2).r, 0.25);
        assert_eq!(img.get(3, 7).r, 0.75);
        assert!(out.results[1].is_none());
    }

    #[test]
    fn gather_seq_pieces() {
        let out = run_group(2, CostModel::free(), |ep| {
            let mut img = Image::blank(4, 4);
            let seq = StridedSeq {
                start: ep.rank(),
                stride: 2,
                count: 8,
            };
            for idx in seq.iter() {
                img.pixels_mut()[idx] = Pixel::gray(1.0, (ep.rank() + 1) as f32 / 2.0);
            }
            gather_image(ep, &img, &OwnedPiece::Seq(seq), 0)
        });
        let img = out.results[0].as_ref().unwrap();
        for (i, p) in img.pixels().iter().enumerate() {
            let expect = if i % 2 == 0 { 0.5 } else { 1.0 };
            assert_eq!(p.a, expect, "pixel {i}");
        }
    }

    #[test]
    fn gather_whole_plus_nothing() {
        let out = run_group(3, CostModel::free(), |ep| {
            let mut img = Image::blank(4, 4);
            if ep.rank() == 1 {
                img.set(2, 2, Pixel::gray(0.9, 0.9));
            }
            let piece = if ep.rank() == 1 {
                OwnedPiece::Whole
            } else {
                OwnedPiece::Nothing
            };
            gather_image(ep, &img, &piece, 1)
        });
        let img = out.results[1].as_ref().unwrap();
        assert_eq!(img.get(2, 2), Pixel::gray(0.9, 0.9));
        assert!(out.results[0].is_none() && out.results[2].is_none());
    }

    #[test]
    #[should_panic(expected = "tile the image exactly")]
    fn gather_detects_coverage_gap() {
        let _ = run_group(2, CostModel::free(), |ep| {
            let img = Image::blank(4, 4);
            // Both ranks claim only half of one row → under-coverage.
            let piece = OwnedPiece::Rect(Rect::new(0, ep.rank() as u16, 2, ep.rank() as u16 + 1));
            gather_image(ep, &img, &piece, 0)
        });
    }
}
