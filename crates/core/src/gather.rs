//! Final gather: assembling owned pieces into the full image at a root
//! rank (the sort-last system's display step).

use vr_comm::Endpoint;
use vr_image::{Image, StridedSeq};
use vr_volume::DepthOrder;

use crate::methods::OwnedPiece;
use crate::schedule::tags;
use crate::wire::{MsgReader, MsgWriter};

const KIND_NOTHING: u32 = 0;
const KIND_RECT: u32 = 1;
const KIND_SEQ: u32 = 2;
const KIND_WHOLE: u32 = 3;

/// Sends this rank's owned piece to `root` and, at the root, assembles
/// the final image from all pieces. Returns `Some(image)` at the root.
pub fn gather_image(
    ep: &mut Endpoint,
    image: &Image,
    piece: &OwnedPiece,
    root: usize,
) -> Option<Image> {
    let payload = {
        let mut w = MsgWriter::new();
        match piece {
            OwnedPiece::Nothing => w.put_u32(KIND_NOTHING),
            OwnedPiece::Rect(r) => {
                w.put_u32(KIND_RECT);
                w.put_rect(*r);
                w.put_pixels(&image.extract_rect(r));
            }
            OwnedPiece::Seq(seq) => {
                w.put_u32(KIND_SEQ);
                w.put_u32(seq.start as u32);
                w.put_u32(seq.stride as u32);
                w.put_u32(seq.count as u32);
                for idx in seq.iter() {
                    w.put_pixel(image.pixels()[idx]);
                }
            }
            OwnedPiece::Whole => {
                w.put_u32(KIND_WHOLE);
                w.put_pixels(image.pixels());
            }
        }
        w.freeze()
    };

    let all = ep
        .gather(root, tags::GATHER, payload)
        .unwrap_or_else(|e| panic!("gather failed: {e}"))?;

    let mut out = Image::blank(image.width(), image.height());
    let mut covered = 0usize;
    for bytes in all {
        let mut r = MsgReader::new(bytes);
        match r.get_u32() {
            KIND_NOTHING => {}
            KIND_RECT => {
                let rect = r.get_rect();
                let pixels = r.get_pixels(rect.area());
                out.write_rect(&rect, &pixels);
                covered += rect.area();
            }
            KIND_SEQ => {
                let seq = StridedSeq {
                    start: r.get_u32() as usize,
                    stride: r.get_u32() as usize,
                    count: r.get_u32() as usize,
                };
                for (i, idx) in seq.iter().enumerate() {
                    let _ = i;
                    out.pixels_mut()[idx] = r.get_pixel();
                }
                covered += seq.count;
            }
            KIND_WHOLE => {
                let pixels = r.get_pixels(out.area());
                let full = out.full_rect();
                out.write_rect(&full, &pixels);
                covered += out.area();
            }
            other => panic!("unknown gather piece kind {other}"),
        }
    }
    assert_eq!(
        covered,
        out.area(),
        "gathered pieces must tile the image exactly"
    );
    Some(out)
}

/// Convenience used by tests and examples: composites with `method` and
/// gathers at rank 0, returning the final image there.
pub fn composite_and_gather(
    method: crate::methods::Method,
    ep: &mut Endpoint,
    image: &mut Image,
    depth: &DepthOrder,
) -> (Option<Image>, crate::stats::MethodStats) {
    let result = crate::methods::composite(method, ep, image, depth);
    let gathered = gather_image(ep, image, &result.piece, 0);
    (gathered, result.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_comm::{run_group, CostModel};
    use vr_image::{Pixel, Rect};

    #[test]
    fn gather_rect_pieces() {
        let out = run_group(4, CostModel::free(), |ep| {
            let mut img = Image::blank(8, 8);
            // Each rank owns two rows and paints them with its rank value.
            let rect = Rect::new(0, ep.rank() as u16 * 2, 8, ep.rank() as u16 * 2 + 2);
            for (x, y) in rect.iter() {
                img.set(x, y, Pixel::gray(ep.rank() as f32 / 4.0, 1.0));
            }
            gather_image(ep, &img, &OwnedPiece::Rect(rect), 0)
        });
        let img = out.results[0].as_ref().unwrap();
        assert_eq!(img.get(3, 0).r, 0.0);
        assert_eq!(img.get(3, 2).r, 0.25);
        assert_eq!(img.get(3, 7).r, 0.75);
        assert!(out.results[1].is_none());
    }

    #[test]
    fn gather_seq_pieces() {
        let out = run_group(2, CostModel::free(), |ep| {
            let mut img = Image::blank(4, 4);
            let seq = StridedSeq {
                start: ep.rank(),
                stride: 2,
                count: 8,
            };
            for idx in seq.iter() {
                img.pixels_mut()[idx] = Pixel::gray(1.0, (ep.rank() + 1) as f32 / 2.0);
            }
            gather_image(ep, &img, &OwnedPiece::Seq(seq), 0)
        });
        let img = out.results[0].as_ref().unwrap();
        for (i, p) in img.pixels().iter().enumerate() {
            let expect = if i % 2 == 0 { 0.5 } else { 1.0 };
            assert_eq!(p.a, expect, "pixel {i}");
        }
    }

    #[test]
    fn gather_whole_plus_nothing() {
        let out = run_group(3, CostModel::free(), |ep| {
            let mut img = Image::blank(4, 4);
            if ep.rank() == 1 {
                img.set(2, 2, Pixel::gray(0.9, 0.9));
            }
            let piece = if ep.rank() == 1 {
                OwnedPiece::Whole
            } else {
                OwnedPiece::Nothing
            };
            gather_image(ep, &img, &piece, 1)
        });
        let img = out.results[1].as_ref().unwrap();
        assert_eq!(img.get(2, 2), Pixel::gray(0.9, 0.9));
        assert!(out.results[0].is_none() && out.results[2].is_none());
    }

    #[test]
    #[should_panic(expected = "tile the image exactly")]
    fn gather_detects_coverage_gap() {
        let _ = run_group(2, CostModel::free(), |ep| {
            let img = Image::blank(4, 4);
            // Both ranks claim only half of one row → under-coverage.
            let piece = OwnedPiece::Rect(Rect::new(0, ep.rank() as u16, 2, ep.rank() as u16 + 1));
            gather_image(ep, &img, &piece, 0)
        });
    }
}
