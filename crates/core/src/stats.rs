//! Per-method, per-rank statistics mirroring the paper's cost terms.

use serde::{Deserialize, Serialize};

/// Counters for one compositing stage on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Payload bytes sent this stage.
    pub sent_bytes: u64,
    /// Payload bytes received this stage (the paper's `R_i^k`).
    pub recv_bytes: u64,
    /// Messages sent this stage (with `sent_bytes`, the per-stage
    /// traffic timeline printed under `--verbose`).
    #[serde(default)]
    pub sent_msgs: u64,
    /// Messages received this stage.
    #[serde(default)]
    pub recv_msgs: u64,
    /// Pixels scanned by run-length encoding this stage (`A_send^k` for
    /// BSBRC, `A/2^k` for BSLC).
    pub encoded_pixels: u64,
    /// Run codes produced this stage (`R_code^k`).
    pub run_codes: u64,
    /// `over` operations applied this stage (`A_rec^k` or `A_opaque^k`).
    pub composite_ops: u64,
    /// Whether the *receiving* bounding rectangle was empty (`[B(k)] = 0`
    /// in Equation (4)).
    pub recv_rect_empty: bool,
    /// The partner rank this stage exchanged with (`None` for stages
    /// with multiple peers, e.g. direct send).
    pub peer: Option<u16>,
}

/// Per-operation computation costs used to *model* `T_comp` from the
/// exact operation counts, mirroring the paper's Equations (1), (3),
/// (5) and (7).
///
/// The simulator's host measures thread-CPU time too, but with `P`
/// rank threads oversubscribing the host's cores those measurements pick
/// up cache-thrash noise that the paper's one-rank-per-node SP2 never
/// saw. Modeling from counts is deterministic and keeps the
/// `T_comp : T_comm` balance faithful to the 66.7 MHz POWER2 nodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompCost {
    /// Seconds per pixel scanned by a bounding-rectangle search
    /// (`T_bound` is this times the scanned area).
    pub t_scan: f64,
    /// Seconds per pixel packed into a send buffer.
    pub t_pack: f64,
    /// Seconds per pixel unpacked from a receive buffer.
    pub t_unpack: f64,
    /// Seconds per `over` operation (the paper's `T_o`).
    pub t_over: f64,
    /// Seconds per pixel visited by run-length encoding (the paper's
    /// `T_encode`).
    pub t_encode: f64,
}

impl CompCost {
    /// Constants calibrated to the paper's POWER2 measurements (Table 1,
    /// Engine_low): `T_comp(BS, P=2) ≈ 298 ms` for packing, unpacking
    /// and compositing `A/2 = 73 728` pixels, and
    /// `T_comp(BSLC) − T_o`-terms consistent with ≈ 0.6 µs per encoded
    /// pixel.
    pub fn power2() -> Self {
        CompCost {
            t_scan: 0.25e-6,
            t_pack: 1.1e-6,
            t_unpack: 1.1e-6,
            t_over: 1.8e-6,
            t_encode: 0.65e-6,
        }
    }

    /// Models one rank's `T_comp` in seconds from its counters.
    pub fn modeled_seconds(&self, stats: &MethodStats) -> f64 {
        let mut t = self.t_scan * stats.bound_pixels as f64
            + self.t_encode * stats.pre_encoded_pixels as f64;
        for s in &stats.stages {
            let sent_px = s.sent_bytes as f64 / vr_image::BYTES_PER_PIXEL as f64;
            let recv_px = s.recv_bytes as f64 / vr_image::BYTES_PER_PIXEL as f64;
            t += self.t_pack * sent_px
                + self.t_unpack * recv_px
                + self.t_over * s.composite_ops as f64
                + self.t_encode * s.encoded_pixels as f64;
        }
        t
    }

    /// Models `T_bound` in seconds.
    pub fn modeled_bound_seconds(&self, stats: &MethodStats) -> f64 {
        self.t_scan * stats.bound_pixels as f64
    }

    /// Models the encoding portion in seconds.
    pub fn modeled_encode_seconds(&self, stats: &MethodStats) -> f64 {
        let per_stage: u64 = stats.stages.iter().map(|s| s.encoded_pixels).sum();
        self.t_encode * (per_stage + stats.pre_encoded_pixels) as f64
    }
}

impl Default for CompCost {
    fn default() -> Self {
        CompCost::power2()
    }
}

/// Aggregated statistics for one rank's run of a compositing method.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MethodStats {
    /// Measured thread-CPU computation time (the paper's `T_comp`),
    /// seconds. May be replaced by a counter-based model at the
    /// experiment level (see `CompCost`).
    pub comp_seconds: f64,
    /// Portion of `comp_seconds` spent on the initial bounding-rectangle
    /// scan (the paper's `T_bound`), seconds.
    pub bound_seconds: f64,
    /// Portion of `comp_seconds` spent run-length encoding, seconds.
    pub encode_seconds: f64,
    /// Modeled communication time (the paper's `T_comm`), seconds,
    /// derived from exact byte counts via the group's cost model.
    pub comm_seconds: f64,
    /// Pixels scanned by bounding-rectangle searches (`A` in the first
    /// BSBR/BSBRC stage; 0 for methods without a scan).
    pub bound_pixels: u64,
    /// Pixels visited by a one-time, pre-stage encoding pass (the
    /// binary-tree baseline's initial value-RLE compression).
    pub pre_encoded_pixels: u64,
    /// Per-stage counters, `stages[k-1]` for the paper's stage `k`.
    pub stages: Vec<StageStat>,
    /// Wall-clock seconds from composite start until this rank's *first*
    /// owned tile finished accumulating (tile-stream only, real
    /// transport only; `None` elsewhere). Unlike the modeled cost terms
    /// above, these two are raw wall measurements — they exist to expose
    /// progressive-delivery latency, not the paper's cost model.
    #[serde(default)]
    pub first_tile_seconds: Option<f64>,
    /// Wall-clock seconds until this rank's *last* owned tile finished
    /// accumulating (tile-stream only, real transport only).
    #[serde(default)]
    pub last_tile_seconds: Option<f64>,
}

impl MethodStats {
    /// `T_total = T_comp + T_comm` (the quantity in Tables 1 and 2).
    pub fn total_seconds(&self) -> f64 {
        self.comp_seconds + self.comm_seconds
    }

    /// Total bytes received over all stages (the paper's `m_i`).
    pub fn recv_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.recv_bytes).sum()
    }

    /// Total bytes sent over all stages.
    pub fn sent_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.sent_bytes).sum()
    }

    /// Total `over` operations across stages.
    pub fn composite_ops(&self) -> u64 {
        self.stages.iter().map(|s| s.composite_ops).sum()
    }

    /// Total run codes produced across stages.
    pub fn run_codes(&self) -> u64 {
        self.stages.iter().map(|s| s.run_codes).sum()
    }

    /// Number of stages whose receiving bounding rectangle was empty.
    pub fn empty_recv_rects(&self) -> usize {
        self.stages.iter().filter(|s| s.recv_rect_empty).count()
    }

    /// Total messages sent over all stages.
    pub fn sent_msgs(&self) -> u64 {
        self.stages.iter().map(|s| s.sent_msgs).sum()
    }

    /// Total messages received over all stages.
    pub fn recv_msgs(&self) -> u64 {
        self.stages.iter().map(|s| s.recv_msgs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_stages() {
        let stats = MethodStats {
            comp_seconds: 0.2,
            comm_seconds: 0.3,
            stages: vec![
                StageStat {
                    sent_bytes: 10,
                    recv_bytes: 20,
                    composite_ops: 5,
                    ..Default::default()
                },
                StageStat {
                    sent_bytes: 1,
                    recv_bytes: 2,
                    composite_ops: 3,
                    recv_rect_empty: true,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert!((stats.total_seconds() - 0.5).abs() < 1e-12);
        assert_eq!(stats.recv_bytes(), 22);
        assert_eq!(stats.sent_bytes(), 11);
        assert_eq!(stats.composite_ops(), 8);
        assert_eq!(stats.empty_recv_rects(), 1);
    }
}
