//! Per-thread CPU-time accumulation for the measured `T_comp` sections.

use std::time::Duration;

/// Accumulates per-thread CPU time over many short compute sections.
///
/// The paper reports `T_comp` (local computation: bounding-rectangle
/// scans, run-length encoding, packing and `over` compositing) separately
/// from `T_comm`. We *measure* the former with this stopwatch and *model*
/// the latter from byte counts, so only compute work may run inside
/// [`Stopwatch::time`] closures — never channel operations.
///
/// The clock is `CLOCK_THREAD_CPUTIME_ID`, not wall time: the simulator
/// oversubscribes cores (P rank threads share the host), and wall time
/// would charge a rank for intervals in which the scheduler ran *other*
/// ranks. Thread CPU time measures exactly the work the real processor
/// would have done.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stopwatch {
    total: Duration,
}

/// Reads the calling thread's CPU time.
#[cfg(unix)]
fn thread_cpu_now() -> Duration {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid, writable timespec; the clock id is a
    // constant supported on all modern Unixes.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

#[cfg(not(unix))]
fn thread_cpu_now() -> Duration {
    // Fallback: wall clock (monotonic since an arbitrary epoch).
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

impl Stopwatch {
    /// A zeroed stopwatch.
    pub fn new() -> Self {
        Stopwatch::default()
    }

    /// Runs `f`, adding its thread-CPU duration to the total.
    #[inline]
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = thread_cpu_now();
        let r = f();
        self.total += thread_cpu_now().saturating_sub(start);
        r
    }

    /// Accumulated seconds.
    pub fn seconds(&self) -> f64 {
        self.total.as_secs_f64()
    }

    /// Adds an externally measured duration.
    pub fn add(&mut self, d: Duration) {
        self.total += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_cpu_work() {
        let mut sw = Stopwatch::new();
        let v = sw.time(|| {
            // Busy work, not sleep: thread CPU time ignores sleeping.
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(v > 0);
        assert!(sw.seconds() > 0.0, "busy loop must consume CPU time");
    }

    #[test]
    fn sleeping_costs_no_cpu_time() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(30)));
        assert!(
            sw.seconds() < 0.02,
            "sleep charged {}s of CPU",
            sw.seconds()
        );
    }

    #[test]
    fn starts_at_zero() {
        assert_eq!(Stopwatch::new().seconds(), 0.0);
    }

    #[test]
    fn add_merges_durations() {
        let mut sw = Stopwatch::new();
        sw.add(Duration::from_millis(250));
        assert!((sw.seconds() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cpu_clock_is_monotone_per_thread() {
        let a = thread_cpu_now();
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_now();
        assert!(b >= a);
    }
}
