//! Binary-swap scheduling: virtual (depth-ordered) ranks, pairing,
//! region splitting, and the non-power-of-two fold extension.

use std::collections::BTreeSet;

use vr_comm::Endpoint;
use vr_image::{Image, Rect};
use vr_volume::DepthOrder;

use crate::error::{try_recv, try_send, CompositeError};
use crate::stats::StageStat;
use crate::timer::Stopwatch;
use crate::wire::{MsgReader, MsgWriter};

/// Message tags used by the compositing protocols.
pub mod tags {
    /// Fold step (non-power-of-two extension).
    pub const FOLD: u32 = 0xF01D;
    /// Binary-swap stage `k` uses `STAGE_BASE + k`.
    pub const STAGE_BASE: u32 = 0x1000;
    /// Final gather of owned pieces.
    pub const GATHER: u32 = 0x6A77;
    /// Binary-tree sends.
    pub const TREE_BASE: u32 = 0x2000;
    /// Direct-send contributions.
    pub const DIRECT: u32 = 0x3000;
    /// Parallel-pipeline hop `t` uses `PIPE_BASE + t`.
    pub const PIPE_BASE: u32 = 0x4000;
    /// Streamed tile contributions (and their DONE sentinels).
    pub const TILE: u32 = 0x7000;
}

/// A rank's view of the depth-ordered virtual topology.
///
/// Virtual rank `v` = position in the front-to-back visibility order, so
/// **smaller virtual rank ⇒ in front**, and any schedule that merges
/// partials covering contiguous virtual intervals composes `over`
/// correctly by comparing integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualTopology {
    vrank: usize,
    v_to_rank: Vec<usize>,
}

impl VirtualTopology {
    /// Builds the full-group topology for this rank from a depth order.
    pub fn from_depth(rank: usize, depth: &DepthOrder) -> Self {
        let v_to_rank = depth.front_to_back().to_vec();
        let vrank = v_to_rank
            .iter()
            .position(|&r| r == rank)
            .expect("rank missing from depth order");
        VirtualTopology { vrank, v_to_rank }
    }

    /// This rank's virtual rank.
    #[inline]
    pub fn vrank(&self) -> usize {
        self.vrank
    }

    /// Number of participating virtual ranks.
    #[inline]
    pub fn vsize(&self) -> usize {
        self.v_to_rank.len()
    }

    /// Real rank of virtual rank `v`.
    #[inline]
    pub fn real(&self, v: usize) -> usize {
        self.v_to_rank[v]
    }

    /// Binary-swap partner at `stage` (0-based): flip bit `stage`.
    #[inline]
    pub fn partner(&self, stage: usize) -> usize {
        self.vrank ^ (1 << stage)
    }

    /// Whether data received from `vpartner` lies in front of this rank's
    /// own partial image.
    #[inline]
    pub fn received_is_front(&self, vpartner: usize) -> bool {
        vpartner < self.vrank
    }

    /// Whether this rank keeps the *low* half at `stage` (its bit is 0).
    #[inline]
    pub fn keeps_low(&self, stage: usize) -> bool {
        (self.vrank >> stage) & 1 == 0
    }

    /// Number of binary-swap stages (`log2 vsize`); panics unless the
    /// virtual size is a power of two (use [`fold_into_pow2`] first).
    pub fn stages(&self) -> usize {
        assert!(
            self.vsize().is_power_of_two(),
            "binary swap requires a power-of-two group"
        );
        self.vsize().trailing_zeros() as usize
    }
}

/// Splits the current image region in half each stage, alternating axes
/// (x first), exactly mirroring "use the centerline of the subimage".
#[derive(Clone, Copy, Debug)]
pub struct RegionSplitter {
    region: Rect,
}

impl RegionSplitter {
    /// Starts from the full image region.
    pub fn new(full: Rect) -> Self {
        RegionSplitter { region: full }
    }

    /// The region this rank currently owns.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Splits for `stage`, keeping the low or high half; returns
    /// `(keep, send)` and advances the internal region to `keep`.
    ///
    /// Both members of a stage's pair hold identical regions (their
    /// virtual ranks agree on all lower bits), so they compute the same
    /// centerline and exchange complementary halves.
    pub fn split(&mut self, stage: usize, keep_low: bool) -> (Rect, Rect) {
        let r = self.region;
        let (lo, hi) = if stage.is_multiple_of(2) {
            r.split_at_x(r.x0 + r.width() / 2)
        } else {
            r.split_at_y(r.y0 + r.height() / 2)
        };
        let (keep, send) = if keep_low { (lo, hi) } else { (hi, lo) };
        self.region = keep;
        (keep, send)
    }
}

/// Result of the pre-swap fold for non-power-of-two groups.
#[derive(Debug)]
pub enum FoldOutcome {
    /// This rank participates in the power-of-two binary swap with the
    /// given reduced topology.
    Active(VirtualTopology),
    /// This rank folded its image into a neighbour and is done until the
    /// gather.
    Folded,
}

/// Folds a `P`-rank group onto the largest power of two `Q ≤ P`
/// (the paper's future-work extension to arbitrary processor counts).
///
/// The first `2(P−Q)` *virtual* positions pair up `(2i, 2i+1)`; each odd
/// position compresses its subimage (bounding rectangle + dense pixels)
/// and sends it to the even position in front of it. Pairs are adjacent
/// in depth order, so merged partials stay depth-contiguous and the
/// remaining `Q` participants renumber without breaking front-to-back
/// monotonicity.
pub fn fold_into_pow2(
    ep: &mut Endpoint,
    image: &mut Image,
    topo: &VirtualTopology,
    comp: &mut Stopwatch,
    stages: &mut Vec<StageStat>,
    dead: &mut BTreeSet<usize>,
) -> Result<FoldOutcome, CompositeError> {
    let p = topo.vsize();
    let q = if p.is_power_of_two() {
        p
    } else {
        p.next_power_of_two() / 2
    };
    let extra = p - q;
    if extra == 0 {
        return Ok(FoldOutcome::Active(topo.clone()));
    }
    let v = topo.vrank();
    let mut stat = StageStat::default();

    if v < 2 * extra {
        if v % 2 == 1 {
            // Fold out: ship bounding rectangle + pixels to the partner
            // in front (virtual v−1), then retire. If that partner is
            // dead the image is lost (a hole); this rank retires anyway.
            let (bounds, payload) = comp.time(|| {
                let bounds = image.bounding_rect();
                let mut w = MsgWriter::with_capacity(8 + bounds.area() * 16);
                w.put_rect(bounds);
                if !bounds.is_empty() {
                    w.put_pixels(&image.extract_rect(&bounds));
                }
                (bounds, w.freeze())
            });
            let _ = bounds;
            stat.sent_bytes = payload.len() as u64;
            stat.sent_msgs = 1;
            if try_send(ep, topo.real(v - 1), tags::FOLD, payload, dead, "fold")? {
                stages.push(stat);
            } else {
                stages.push(StageStat::default());
            }
            return Ok(FoldOutcome::Folded);
        }
        // Receive the behind-neighbour's image and composite it under
        // our own (we are in front). A dead neighbour contributes
        // nothing — we keep our own partial.
        if let Some(payload) = try_recv(ep, topo.real(v + 1), tags::FOLD, dead, "fold")? {
            stat.recv_bytes = payload.len() as u64;
            stat.recv_msgs = 1;
            comp.time(|| {
                let mut r = MsgReader::new(payload);
                let rect = r.get_rect();
                stat.recv_rect_empty = rect.is_empty();
                if !rect.is_empty() {
                    // The merged bounds are the union of ours and the
                    // arriving (tight) rectangle: `over` on non-negative
                    // premultiplied pixels never blanks a non-blank pixel,
                    // so no rescan is needed to keep the fast path armed.
                    let prior = image.bounds_hint();
                    let pixels = r.get_pixels(rect.area());
                    stat.composite_ops = image.composite_rect_under(&rect, &pixels) as u64;
                    if let Some(h) = prior {
                        image.assert_bounds(h.union(&rect));
                    }
                }
            });
        } else {
            stat.recv_rect_empty = true;
        }
        stages.push(stat);
    }

    // Renumber the survivors: old even positions < 2·extra halve; old
    // positions ≥ 2·extra shift down by `extra`.
    let mut v_to_rank = Vec::with_capacity(q);
    for old in (0..2 * extra).step_by(2) {
        v_to_rank.push(topo.real(old));
    }
    for old in 2 * extra..p {
        v_to_rank.push(topo.real(old));
    }
    let new_v = if v < 2 * extra { v / 2 } else { v - extra };
    Ok(FoldOutcome::Active(VirtualTopology {
        vrank: new_v,
        v_to_rank,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(vrank: usize, p: usize) -> VirtualTopology {
        VirtualTopology {
            vrank,
            v_to_rank: (0..p).collect(),
        }
    }

    #[test]
    fn from_depth_positions() {
        let depth = DepthOrder::from_sequence(vec![2, 0, 1]);
        let t = VirtualTopology::from_depth(0, &depth);
        assert_eq!(t.vrank(), 1); // rank 0 is second front-to-back
        assert_eq!(t.real(0), 2);
        assert_eq!(t.real(1), 0);
        assert_eq!(t.real(2), 1);
    }

    #[test]
    fn partner_flips_stage_bit() {
        let t = topo(5, 8); // 0b101
        assert_eq!(t.partner(0), 4);
        assert_eq!(t.partner(1), 7);
        assert_eq!(t.partner(2), 1);
    }

    #[test]
    fn front_is_smaller_vrank() {
        let t = topo(3, 8);
        assert!(t.received_is_front(1));
        assert!(!t.received_is_front(6));
    }

    #[test]
    fn keeps_low_follows_bits() {
        let t = topo(0b0110, 16);
        assert!(t.keeps_low(0));
        assert!(!t.keeps_low(1));
        assert!(!t.keeps_low(2));
        assert!(t.keeps_low(3));
    }

    #[test]
    fn stages_for_pow2() {
        assert_eq!(topo(0, 1).stages(), 0);
        assert_eq!(topo(0, 8).stages(), 3);
        assert_eq!(topo(0, 64).stages(), 6);
    }

    #[test]
    #[should_panic]
    fn stages_rejects_non_pow2() {
        let _ = topo(0, 6).stages();
    }

    #[test]
    fn region_splitter_alternates_axes() {
        let mut s = RegionSplitter::new(Rect::new(0, 0, 8, 8));
        let (keep, send) = s.split(0, true); // x split
        assert_eq!(keep, Rect::new(0, 0, 4, 8));
        assert_eq!(send, Rect::new(4, 0, 8, 8));
        let (keep, send) = s.split(1, false); // y split of the kept half
        assert_eq!(keep, Rect::new(0, 4, 4, 8));
        assert_eq!(send, Rect::new(0, 0, 4, 4));
        assert_eq!(s.region(), Rect::new(0, 4, 4, 8));
    }

    #[test]
    fn region_splitter_handles_odd_extents() {
        let mut s = RegionSplitter::new(Rect::new(0, 0, 7, 3));
        let (keep, send) = s.split(0, true);
        assert_eq!(keep.area() + send.area(), 21);
        assert!(!keep.is_empty() && !send.is_empty());
    }

    #[test]
    fn pair_members_compute_complementary_halves() {
        // Virtual ranks 2 (0b10) and 3 (0b11) pair at stage 0 and must
        // produce swapped keep/send rects from the same region.
        let full = Rect::new(0, 0, 16, 16);
        let mut a = RegionSplitter::new(full);
        let mut b = RegionSplitter::new(full);
        let ta = topo(2, 4);
        let tb = topo(3, 4);
        let (keep_a, send_a) = a.split(0, ta.keeps_low(0));
        let (keep_b, send_b) = b.split(0, tb.keeps_low(0));
        assert_eq!(keep_a, send_b);
        assert_eq!(send_a, keep_b);
    }

    #[test]
    fn fold_renumbering_preserves_order() {
        // p = 6 → q = 4, extra = 2: old positions 0,2,4,5 survive as
        // 0,1,2,3 — still ascending in depth.
        use vr_comm::CostModel;
        let depth = DepthOrder::identity(6);
        let out = vr_comm::run_group(6, CostModel::free(), |ep| {
            let topo = VirtualTopology::from_depth(ep.rank(), &depth);
            let mut img = Image::blank(4, 4);
            if ep.rank() % 2 == 1 && ep.rank() < 4 {
                img.set(ep.rank() as u16, 0, vr_image::Pixel::gray(1.0, 1.0));
            }
            let mut sw = Stopwatch::new();
            let mut stages = Vec::new();
            let mut dead = BTreeSet::new();
            match fold_into_pow2(ep, &mut img, &topo, &mut sw, &mut stages, &mut dead).unwrap() {
                FoldOutcome::Active(t) => Some((t.vrank(), t.vsize(), img.non_blank_count())),
                FoldOutcome::Folded => None,
            }
        });
        // Ranks 1 and 3 folded out (odd positions < 4).
        assert!(out.results[1].is_none());
        assert!(out.results[3].is_none());
        let (v0, q0, n0) = out.results[0].unwrap();
        let (v2, q2, n2) = out.results[2].unwrap();
        let (v4, _, _) = out.results[4].unwrap();
        let (v5, _, _) = out.results[5].unwrap();
        assert_eq!((v0, q0), (0, 4));
        assert_eq!((v2, q2), (1, 4));
        assert_eq!(v4, 2);
        assert_eq!(v5, 3);
        // Folded images arrived: rank 0 got rank 1's pixel, rank 2 got 3's.
        assert_eq!(n0, 1);
        assert_eq!(n2, 1);
    }
}
