//! Integration tests for the scheduling layer: fold correctness at
//! scale, virtual topology algebra, and stage structure.

use slsvr_core::{composite, gather_image, reference_composite, Method, VirtualTopology};
use vr_comm::{run_group, CostModel};
use vr_image::{Image, Pixel};
use vr_volume::DepthOrder;

fn striped(p: usize, w: u16, h: u16) -> Vec<Image> {
    (0..p)
        .map(|r| {
            Image::from_fn(w, h, |x, y| {
                if (x as usize + y as usize * 2) % p == r {
                    Pixel::gray(0.1 + r as f32 / p as f32 * 0.8, 0.4)
                } else {
                    Pixel::BLANK
                }
            })
        })
        .collect()
}

#[test]
fn every_non_pow2_up_to_17_matches_reference() {
    // The fold extension across the full small range, including primes
    // and 2^k ± 1 edge cases.
    for p in [3, 5, 6, 7, 9, 11, 12, 13, 15, 17] {
        let images = striped(p, 24, 18);
        let depth = DepthOrder::identity(p);
        let expect = reference_composite(&images, &depth);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            let res = composite(Method::Bsbrc, ep, &mut img, &depth).unwrap();
            gather_image(ep, &img, &res.piece, 0)
        });
        let got = out.results[0].as_ref().unwrap();
        let diff = got.max_abs_diff(&expect);
        assert!(diff < 2e-4, "P={p}: diff {diff}");
    }
}

#[test]
fn fold_count_matches_formula() {
    // With P ranks, P − 2^⌊log2 P⌋ ranks fold out; the rest run
    // log2(2^⌊log2 P⌋) exchange stages.
    for p in [5usize, 6, 7, 9, 12] {
        let q = p.next_power_of_two() / 2;
        let extra = p - q;
        let images = striped(p, 16, 16);
        let depth = DepthOrder::identity(p);
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            composite(Method::Bs, ep, &mut img, &depth).unwrap().stats
        });
        let folded = out
            .results
            .iter()
            .filter(|s| s.stages.len() == 1 && s.stages[0].recv_bytes == 0)
            .count();
        assert_eq!(folded, extra, "P={p}: wrong number of folded ranks");
        // Active ranks: (optional fold-receive stage) + log2(q) swap stages.
        let swap_stages = q.trailing_zeros() as usize;
        for s in &out.results {
            assert!(
                s.stages.len() == swap_stages
                    || s.stages.len() == swap_stages + 1
                    || (s.stages.len() == 1 && s.stages[0].recv_bytes == 0),
                "P={p}: unexpected stage count {}",
                s.stages.len()
            );
        }
    }
}

#[test]
fn virtual_topology_pairing_is_an_involution() {
    let depth = DepthOrder::from_sequence(vec![3, 0, 2, 1, 7, 4, 6, 5]);
    for rank in 0..8 {
        let t = VirtualTopology::from_depth(rank, &depth);
        for stage in 0..3 {
            let partner_v = t.partner(stage);
            let partner_rank = t.real(partner_v);
            let tp = VirtualTopology::from_depth(partner_rank, &depth);
            assert_eq!(tp.partner(stage), t.vrank(), "pairing must be symmetric");
            assert_eq!(tp.real(tp.partner(stage)), rank);
            // Exactly one of the pair keeps low.
            assert_ne!(t.keeps_low(stage), tp.keeps_low(stage));
        }
    }
}

#[test]
fn orientation_is_antisymmetric_across_pairs() {
    let depth = DepthOrder::from_sequence(vec![1, 3, 0, 2]);
    for rank in 0..4 {
        let t = VirtualTopology::from_depth(rank, &depth);
        for stage in 0..2 {
            let pv = t.partner(stage);
            let partner_rank = t.real(pv);
            let tp = VirtualTopology::from_depth(partner_rank, &depth);
            // If I consider the received data "front", my partner must
            // consider its received data (mine) "back".
            assert_ne!(
                t.received_is_front(pv),
                tp.received_is_front(tp.partner(stage)),
                "rank {rank} stage {stage}"
            );
        }
    }
}

#[test]
fn stats_stage_peers_are_symmetric() {
    let p = 8;
    let images = striped(p, 16, 16);
    let depth = DepthOrder::identity(p);
    let out = run_group(p, CostModel::free(), |ep| {
        let mut img = images[ep.rank()].clone();
        composite(Method::Bsbrc, ep, &mut img, &depth)
            .unwrap()
            .stats
    });
    for (rank, stats) in out.results.iter().enumerate() {
        for (k, stage) in stats.stages.iter().enumerate() {
            let peer = stage.peer.expect("swap stages record peers") as usize;
            let back = out.results[peer].stages[k].peer.unwrap() as usize;
            assert_eq!(back, rank, "stage {k} peer symmetry broken");
        }
    }
}
