//! Exhaustive method × topology correctness matrix, plus cross-method
//! agreement checks on rendered-like content — the compositing layer's
//! own integration suite (the umbrella crate has the full-system one).

use slsvr_core::{composite, gather_image, reference_composite, Method};
use vr_comm::{run_group, CostModel};
use vr_image::{Image, Pixel};
use vr_volume::DepthOrder;

/// Deterministic pseudo-rendered subimages with per-rank clusters.
fn subimages(p: usize, w: u16, h: u16) -> Vec<Image> {
    (0..p)
        .map(|r| {
            Image::from_fn(w, h, |x, y| {
                let hash = (x as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add((y as u32).wrapping_mul(40503))
                    .wrapping_add(r as u32 * 9973);
                let cx = ((r * 2 + 1) * w as usize / (2 * p)) as i32;
                let dx = (x as i32 - cx).abs();
                if dx < (w as i32 / 3) && hash % 100 < 35 {
                    Pixel::from_straight(
                        (hash % 255) as f32 / 255.0,
                        ((hash >> 8) % 255) as f32 / 255.0,
                        ((hash >> 16) % 255) as f32 / 255.0,
                        0.1 + ((hash >> 4) % 90) as f32 / 100.0,
                    )
                } else {
                    Pixel::BLANK
                }
            })
        })
        .collect()
}

fn run_case(method: Method, p: usize, depth: &DepthOrder) {
    let images = subimages(p, 30, 22);
    let expect = reference_composite(&images, depth);
    let out = run_group(p, CostModel::sp2(), |ep| {
        let mut img = images[ep.rank()].clone();
        let res = composite(method, ep, &mut img, depth).unwrap();
        gather_image(ep, &img, &res.piece, 0)
    });
    let got = out.results[0].as_ref().expect("gathered at root");
    let diff = got.max_abs_diff(&expect);
    assert!(
        diff < 2e-4,
        "{method:?} P={p} depth={:?}: diff {diff}",
        depth.front_to_back()
    );
}

#[test]
fn full_matrix_identity_depth() {
    for method in Method::all() {
        for p in [1, 2, 3, 4, 5, 8] {
            run_case(method, p, &DepthOrder::identity(p));
        }
    }
}

#[test]
fn full_matrix_reversed_depth() {
    for method in Method::all() {
        for p in [2, 4, 7, 8] {
            run_case(
                method,
                p,
                &DepthOrder::from_sequence((0..p).rev().collect()),
            );
        }
    }
}

#[test]
fn full_matrix_rotated_depth() {
    for method in Method::all() {
        for p in [3, 6, 8] {
            // A rotation of the identity — every rank shifted by p/2.
            let seq: Vec<usize> = (0..p).map(|i| (i + p / 2) % p).collect();
            run_case(method, p, &DepthOrder::from_sequence(seq));
        }
    }
}

#[test]
fn colored_pixels_survive_every_method() {
    // Full RGBA (not just gray): catches channel mix-ups in wire
    // formats and the over operator.
    let p = 4;
    let depth = DepthOrder::from_sequence(vec![2, 0, 3, 1]);
    let images = subimages(p, 16, 16);
    let expect = reference_composite(&images, &depth);
    for method in Method::all() {
        let out = run_group(p, CostModel::free(), |ep| {
            let mut img = images[ep.rank()].clone();
            let res = composite(method, ep, &mut img, &depth).unwrap();
            gather_image(ep, &img, &res.piece, 0)
        });
        let got = out.results[0].as_ref().unwrap();
        assert!(
            got.max_abs_diff(&expect) < 2e-4,
            "{method:?} mangled colored pixels"
        );
    }
}

#[test]
fn methods_agree_pairwise_on_m_max_relations() {
    // Eq. (9)-adjacent sanity on clustered content across several P.
    for p in [4, 8, 16] {
        let images = subimages(p, 32, 32);
        let depth = DepthOrder::identity(p);
        let m = |method: Method| {
            let out = run_group(p, CostModel::free(), |ep| {
                let mut img = images[ep.rank()].clone();
                composite(method, ep, &mut img, &depth)
                    .unwrap()
                    .stats
                    .recv_bytes()
            });
            out.results.into_iter().max().unwrap()
        };
        let bs = m(Method::Bs);
        let bsbr = m(Method::Bsbr);
        let bsbrc = m(Method::Bsbrc);
        let stages = p.trailing_zeros() as u64;
        assert!(bs + 8 * stages >= bsbr, "P={p}: BS {bs} < BSBR {bsbr}");
        assert!(
            bsbr + 12 * stages >= bsbrc,
            "P={p}: BSBR {bsbr} < BSBRC {bsbrc}"
        );
    }
}
