//! Wire-protocol integration tests: each method's message layout parses
//! exactly and matches its cost-equation structure, validated by a
//! protocol-sniffing rank that decodes its partner's raw bytes.

use slsvr_core::wire::{MsgReader, MsgWriter};
use slsvr_core::{composite, Method};
use vr_comm::{run_group, CostModel};
use vr_image::{Image, MaskRle, Pixel, Rect};
use vr_volume::DepthOrder;

fn content_image(w: u16, h: u16, salt: u32) -> Image {
    Image::from_fn(w, h, |x, y| {
        let v = (x as u32)
            .wrapping_mul(97)
            .wrapping_add((y as u32).wrapping_mul(31))
            .wrapping_add(salt);
        if v.is_multiple_of(5) {
            Pixel::gray((v % 200) as f32 / 255.0, 0.6)
        } else {
            Pixel::BLANK
        }
    })
}

#[test]
fn writer_reader_agree_on_every_element_type() {
    let mut w = MsgWriter::new();
    w.put_rect(Rect::new(5, 6, 70, 80));
    w.put_u32(0xDEADBEEF);
    w.put_codes(&[0, 1, 65535]);
    w.put_bytes(&[1, 2, 3]);
    w.put_pixel(Pixel::gray(0.5, 0.25));
    let total = 8 + 4 + 6 + 3 + 16;
    assert_eq!(w.len(), total);
    let mut r = MsgReader::new(w.freeze());
    assert_eq!(r.get_rect(), Rect::new(5, 6, 70, 80));
    assert_eq!(r.get_u32(), 0xDEADBEEF);
    assert_eq!(r.get_codes(3), vec![0, 1, 65535]);
    assert_eq!(r.get_bytes(3), vec![1, 2, 3]);
    assert_eq!(r.get_pixel(), Pixel::gray(0.5, 0.25));
    assert_eq!(r.remaining(), 0);
}

/// BSBRC message: rect + code count + codes + exactly the advertised
/// non-blank pixels, nothing more.
#[test]
fn bsbrc_message_parses_exactly() {
    let p = 2;
    let depth = DepthOrder::identity(p);
    let images = [content_image(32, 32, 1), content_image(32, 32, 2)];
    // Run the real protocol but also re-derive rank 1's first message
    // from its image content and compare byte-for-byte.
    let out = run_group(p, CostModel::free(), |ep| {
        let mut img = images[ep.rank()].clone();
        composite(Method::Bsbrc, ep, &mut img, &depth)
            .unwrap()
            .stats
    });
    // Reconstruct what rank 1 must have sent at stage 0: its bounding
    // rect ∩ left half, RLE-encoded.
    let img = &images[1];
    let bounds = img.bounding_rect();
    let (left, _right) = img.full_rect().split_at_x(16);
    let send_bounds = bounds.intersect(&left);
    let rle = MaskRle::encode_mask(send_bounds.iter().map(|(x, y)| !img.get(x, y).is_blank()));
    let expect_len = 8 + 4 + rle.wire_bytes() + rle.non_blank_total() * 16;
    assert_eq!(out.results[1].stages[0].sent_bytes as usize, expect_len);
    assert_eq!(out.results[1].stages[0].run_codes as usize, rle.num_codes());
}

/// BSBR message: rect + dense pixels of that rect.
#[test]
fn bsbr_message_parses_exactly() {
    let p = 2;
    let depth = DepthOrder::identity(p);
    let images = [content_image(24, 24, 3), content_image(24, 24, 4)];
    let out = run_group(p, CostModel::free(), |ep| {
        let mut img = images[ep.rank()].clone();
        composite(Method::Bsbr, ep, &mut img, &depth).unwrap().stats
    });
    let img = &images[0];
    let (_, right) = img.full_rect().split_at_x(12);
    let send_bounds = img.bounding_rect().intersect(&right);
    let expect = 8 + send_bounds.area() * 16;
    assert_eq!(out.results[0].stages[0].sent_bytes as usize, expect);
}

/// BSBM message: rect + ⌈area/8⌉ mask bytes + non-blank pixels.
#[test]
fn bsbm_message_parses_exactly() {
    let p = 2;
    let depth = DepthOrder::identity(p);
    let images = [content_image(24, 24, 5), content_image(24, 24, 6)];
    let out = run_group(p, CostModel::free(), |ep| {
        let mut img = images[ep.rank()].clone();
        composite(Method::Bsbm, ep, &mut img, &depth).unwrap().stats
    });
    let img = &images[0];
    let (_, right) = img.full_rect().split_at_x(12);
    let send_bounds = img.bounding_rect().intersect(&right);
    let non_blank = img.non_blank_count_in(&send_bounds);
    let expect = 8 + send_bounds.area().div_ceil(8) + non_blank * 16;
    assert_eq!(out.results[0].stages[0].sent_bytes as usize, expect);
}

/// BS messages carry no framing at all: exactly `16·A/2` bytes.
#[test]
fn bs_message_is_headerless() {
    let p = 2;
    let depth = DepthOrder::identity(p);
    let images = [content_image(20, 20, 7), content_image(20, 20, 8)];
    let out = run_group(p, CostModel::free(), |ep| {
        let mut img = images[ep.rank()].clone();
        composite(Method::Bs, ep, &mut img, &depth).unwrap().stats
    });
    for s in &out.results {
        assert_eq!(s.stages[0].sent_bytes as usize, 10 * 20 * 16);
    }
}
