//! Property tests for the reusable wire scratch buffers: reusing a
//! [`ScratchPool`] across stages must never leak pixels from an earlier
//! payload into a later one, and the watermark must track capacity.

use proptest::prelude::*;
use slsvr_core::wire::{MsgReader, MsgWriter, ScratchPool};
use vr_image::Pixel;

fn arb_payload() -> impl Strategy<Value = Vec<Pixel>> {
    proptest::collection::vec(
        (0.0f32..=1.0, 0.0f32..=1.0).prop_map(|(v, a)| Pixel::gray(v * a, a)),
        0..200,
    )
}

proptest! {
    #[test]
    fn scratch_reuse_never_leaks_stale_pixels(
        payloads in proptest::collection::vec(arb_payload(), 1..12)
    ) {
        // One pool reused across every "stage", exactly as the
        // binary-swap methods drive it: shrinking, growing and empty
        // payloads interleave, and after each round-trip the receive
        // buffer must hold the fresh payload and nothing else.
        let mut pool = ScratchPool::new();
        for payload in &payloads {
            let mut w = MsgWriter::new();
            pool.send.clear();
            pool.send.extend_from_slice(payload);
            w.put_pixels(&pool.send);
            let mut r = MsgReader::new(w.freeze());
            r.get_pixels_into(payload.len(), &mut pool.recv);
            pool.note_watermark();
            prop_assert_eq!(&pool.recv, payload);
            prop_assert_eq!(r.remaining(), 0);
        }
        // The watermark covers the largest resident footprint seen.
        let largest = payloads.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert!(
            pool.peak_bytes() >= (2 * largest * vr_image::BYTES_PER_PIXEL) as u64
        );
    }

    #[test]
    fn watermark_is_monotone(sizes in proptest::collection::vec(0usize..500, 1..10)) {
        let mut pool = ScratchPool::new();
        let mut last = 0;
        for n in sizes {
            pool.send.clear();
            pool.send.resize(n, Pixel::BLANK);
            pool.note_watermark();
            prop_assert!(pool.peak_bytes() >= last);
            last = pool.peak_bytes();
            prop_assert!(
                pool.peak_bytes() >= (n * vr_image::BYTES_PER_PIXEL) as u64
            );
        }
    }
}
