//! Spawning a group of rank threads.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::endpoint::{Endpoint, EndpointConfig, Message, DEFAULT_RECV_DEADLINE};
use crate::fault::{FaultConfig, FaultPlan};
use crate::reliable::ReliabilityConfig;
use crate::stats::TrafficStats;
use crate::vclock::{ScheduleSpec, ScheduleTrace, SimNet};

/// Group-wide knobs for a run: cost model, receive deadline, fault
/// injection, the reliable-delivery policy, and (optionally) a
/// deterministic virtual-time schedule.
#[derive(Clone, Debug)]
pub struct GroupOptions {
    /// Communication cost model applied to every received message.
    pub cost: CostModel,
    /// How long a blocking receive waits before declaring a deadlock.
    pub recv_deadline: Duration,
    /// Fault-injection campaign, if any.
    pub faults: Option<FaultConfig>,
    /// Reliable-delivery (framing + ack/retransmit) policy.
    pub reliability: ReliabilityConfig,
    /// When set, the run executes under the discrete-event virtual clock
    /// (see [`crate::vclock`]): timeouts become virtual, delivery order
    /// is permuted deterministically by the spec's seed, and the whole
    /// run is bit-reproducible.
    pub schedule: Option<ScheduleSpec>,
}

impl Default for GroupOptions {
    fn default() -> Self {
        GroupOptions {
            cost: CostModel::sp2(),
            recv_deadline: DEFAULT_RECV_DEADLINE,
            faults: None,
            reliability: ReliabilityConfig::default(),
            schedule: None,
        }
    }
}

/// The outcome of a group run: each rank's return value plus its traffic.
#[derive(Debug)]
pub struct GroupRun<R> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank traffic stats, indexed by rank.
    pub stats: Vec<TrafficStats>,
    /// Ranks killed by fault injection during the run (ascending).
    pub dead_ranks: Vec<usize>,
    /// The schedule the run took, when it ran under virtual time.
    pub schedule: Option<ScheduleTrace>,
}

impl<R> GroupRun<R> {
    /// The paper's `M_max`: maximum bytes received by any rank.
    pub fn m_max(&self) -> u64 {
        crate::stats::m_max(&self.stats)
    }

    /// Maximum modeled communication time over ranks, in seconds.
    pub fn max_comm_seconds(&self) -> f64 {
        crate::stats::max_comm_seconds(&self.stats)
    }

    /// True when fault injection killed at least one rank.
    pub fn is_degraded(&self) -> bool {
        !self.dead_ranks.is_empty()
    }
}

/// Runs `f` on `size` simulated processors and collects results.
///
/// Every rank runs on its own OS thread with a private [`Endpoint`]; rank
/// threads share nothing else. A panic on any rank propagates (the group
/// run panics), so test assertions may live inside rank functions.
///
/// ```
/// use bytes::Bytes;
/// use vr_comm::{run_group, CostModel};
///
/// // Each rank sends its id to the next rank around a ring.
/// let out = run_group(4, CostModel::sp2(), |ep| {
///     let next = (ep.rank() + 1) % ep.size();
///     let prev = (ep.rank() + ep.size() - 1) % ep.size();
///     ep.send(next, 0, Bytes::from(vec![ep.rank() as u8])).unwrap();
///     ep.recv(prev, 0).unwrap()[0] as usize
/// });
/// assert_eq!(out.results, vec![3, 0, 1, 2]);
/// assert!(out.m_max() > 0);
/// ```
pub fn run_group<R, F>(size: usize, cost: CostModel, f: F) -> GroupRun<R>
where
    R: Send,
    F: Fn(&mut Endpoint) -> R + Sync,
{
    run_group_with(
        size,
        GroupOptions {
            cost,
            ..Default::default()
        },
        f,
    )
}

/// [`run_group`] with full control over deadline, faults and reliability.
///
/// If a rank panics, its endpoint is dropped *immediately* (so partners
/// observe `Disconnected` instead of blocking until the receive
/// deadline), every other rank is still allowed to finish, and the
/// original panic is then re-raised.
pub fn run_group_with<R, F>(size: usize, options: GroupOptions, f: F) -> GroupRun<R>
where
    R: Send,
    F: Fn(&mut Endpoint) -> R + Sync,
{
    assert!(size >= 1, "group must have at least one rank");

    let plan = options
        .faults
        .filter(|cfg| !cfg.is_noop())
        .map(FaultPlan::new);
    let sim = options
        .schedule
        .as_ref()
        .map(|spec| SimNet::new(size, options.cost, spec.clone()));

    // Wire one dedicated channel per ordered (src, dst) pair so selective
    // receive-by-source never reorders unrelated messages.
    let mut senders_by_dst: Vec<Vec<crossbeam::channel::Sender<Message>>> =
        (0..size).map(|_| Vec::with_capacity(size)).collect();
    let mut receivers_by_dst: Vec<Vec<crossbeam::channel::Receiver<Message>>> =
        (0..size).map(|_| Vec::with_capacity(size)).collect();
    for dst in 0..size {
        for _src in 0..size {
            let (tx, rx) = unbounded();
            senders_by_dst[dst].push(tx);
            receivers_by_dst[dst].push(rx);
        }
    }

    let barrier = Arc::new(std::sync::Barrier::new(size));

    // Build each rank's endpoint: `to[dst]` = sender into dst's slot for
    // this rank; `from[src]` = this rank's receiver slot for src.
    let mut endpoints: Vec<Endpoint> = Vec::with_capacity(size);
    for rank in 0..size {
        let from = std::mem::take(&mut receivers_by_dst[rank]);
        let to = (0..size)
            .map(|dst| senders_by_dst[dst][rank].clone())
            .collect();
        endpoints.push(Endpoint::new(
            rank,
            size,
            to,
            from,
            Arc::clone(&barrier),
            EndpointConfig {
                cost: options.cost,
                recv_deadline: options.recv_deadline,
                reliability: options.reliability,
                faults: plan,
                kill_at: plan.and_then(|p| p.kill_threshold(rank)),
                sim: sim.clone(),
            },
        ));
    }
    drop(senders_by_dst);

    let slots: Mutex<Vec<Option<(R, TrafficStats)>>> =
        Mutex::new((0..size).map(|_| None).collect());
    let dead_flags: Mutex<Vec<bool>> = Mutex::new(vec![false; size]);
    // Ranks that completed their closure; healthy ranks linger (keep
    // answering retransmissions) until everyone is done.
    let finished = std::sync::atomic::AtomicUsize::new(0);
    // Panic payloads in the order they occurred; the first is re-raised
    // (later ones are usually cascades from the first rank's death).
    let panics: Mutex<Vec<Box<dyn std::any::Any + Send + 'static>>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for mut ep in endpoints {
            let rank = ep.rank();
            let fr = &f;
            let res = &slots;
            let dead = &dead_flags;
            let boom = &panics;
            let finished = &finished;
            let sim_t = sim.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| fr(&mut ep)));
                        let killed = ep.is_dead();
                        finished.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        // Only after the external counter, so a virtual
                        // group-done wake observes it at its final value.
                        if let Some(s) = &sim_t {
                            s.finish_rank(rank);
                        }
                        if outcome.is_ok() && !killed {
                            // A healthy rank's transport state outlives
                            // its last receive: re-ack retransmissions
                            // until the whole group is done so lost acks
                            // don't masquerade as a dead peer. Killed or
                            // panicking ranks drop immediately instead —
                            // that disconnect *is* their failure signal.
                            ep.linger_until(|| {
                                finished.load(std::sync::atomic::Ordering::SeqCst) == size
                            });
                        }
                        let stats = ep.into_stats();
                        // `ep` is gone here: its outgoing senders are
                        // dropped, so partners blocked on this rank see
                        // `Disconnected` now rather than at the deadline.
                        match outcome {
                            Ok(r) => {
                                dead.lock()[rank] = killed;
                                res.lock()[rank] = Some((r, stats));
                            }
                            Err(payload) => {
                                dead.lock()[rank] = true;
                                boom.lock().push(payload);
                            }
                        }
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        for h in handles {
            // Rank bodies run under catch_unwind, so joins only fail on
            // runtime-internal panics; propagate those unchanged.
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let schedule = sim.map(|s| s.take_trace());

    let mut panics = panics.into_inner();
    if !panics.is_empty() {
        std::panic::resume_unwind(panics.remove(0));
    }

    let mut results_out = Vec::with_capacity(size);
    let mut stats_out = Vec::with_capacity(size);
    for slot in slots.into_inner() {
        let (r, s) = slot.expect("rank thread completed without storing a result");
        results_out.push(r);
        stats_out.push(s);
    }
    let dead_ranks = dead_flags
        .into_inner()
        .iter()
        .enumerate()
        .filter_map(|(rank, &d)| d.then_some(rank))
        .collect();
    GroupRun {
        results: results_out,
        stats: stats_out,
        dead_ranks,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Instant;

    #[test]
    fn single_rank_group_runs() {
        let out = run_group(1, CostModel::free(), |ep| ep.rank() + ep.size());
        assert_eq!(out.results, vec![1]);
        assert_eq!(out.stats.len(), 1);
        assert!(out.dead_ranks.is_empty());
        assert!(!out.is_degraded());
    }

    #[test]
    fn results_indexed_by_rank() {
        let out = run_group(16, CostModel::free(), |ep| ep.rank() * 2);
        assert_eq!(out.results, (0..16).map(|r| r * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn zero_size_group_rejected() {
        let _ = run_group(0, CostModel::free(), |_| ());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        let _ = run_group(4, CostModel::free(), |ep| {
            if ep.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn dying_rank_unblocks_partners_immediately() {
        // Regression: a panicking rank used to leave partners blocked in
        // `recv` until the 60s deadline, because its endpoint (and thus
        // its outgoing channel senders) stayed alive until the scope
        // joined every thread. Now the endpoint drops as soon as the
        // rank body unwinds, partners see `Disconnected` right away, and
        // the original panic is re-raised afterwards.
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(|| {
            run_group(2, CostModel::free(), |ep| {
                if ep.rank() == 1 {
                    panic!("kaboom");
                }
                // Rank 0 waits on the dying rank; it must not hang.
                let got = ep.recv(1, 0);
                assert_eq!(got, Err(crate::RecvError::Disconnected { from: 1 }));
            })
        });
        let elapsed = started.elapsed();
        let payload = outcome.expect_err("the rank panic must re-raise");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "kaboom", "the original panic payload survives");
        assert!(
            elapsed < Duration::from_secs(10),
            "partners must unblock promptly, took {elapsed:?}"
        );
    }

    #[test]
    fn survivors_finish_before_panic_re_raise() {
        // All non-panicking ranks complete their work and store results
        // even though the run ultimately re-raises.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static FINISHED: AtomicUsize = AtomicUsize::new(0);
        FINISHED.store(0, Ordering::SeqCst);
        let outcome = std::panic::catch_unwind(|| {
            run_group(4, CostModel::free(), |ep| {
                if ep.rank() == 0 {
                    panic!("die");
                }
                // Survivors talk among themselves (ring over ranks 1..4).
                let next = 1 + (ep.rank() % 3);
                let prev = 1 + ((ep.rank() + 1) % 3);
                ep.send(next, 0, Bytes::from(vec![ep.rank() as u8]))
                    .unwrap();
                let _ = ep.recv(prev, 0).unwrap();
                FINISHED.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert!(outcome.is_err());
        assert_eq!(FINISHED.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn virtual_time_ring_is_reproducible_and_traced() {
        let run = |seed: u64| {
            let options = GroupOptions {
                cost: CostModel::sp2(),
                schedule: Some(ScheduleSpec::seeded(seed)),
                ..Default::default()
            };
            run_group_with(8, options, |ep| {
                let next = (ep.rank() + 1) % ep.size();
                let prev = (ep.rank() + ep.size() - 1) % ep.size();
                ep.send(next, 7, Bytes::from(vec![ep.rank() as u8]))
                    .unwrap();
                ep.recv(prev, 7).unwrap()[0] as usize
            })
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a.results, (0..8).map(|r| (r + 7) % 8).collect::<Vec<_>>());
        assert_eq!(a.results, b.results);
        let (ta, tb) = (a.schedule.unwrap(), b.schedule.unwrap());
        assert_eq!(ta, tb, "same seed must replay the same schedule");
        assert!(ta.events >= 8, "eight deliveries at minimum");
        assert!(
            ta.virtual_seconds > 0.0,
            "sp2 latency must advance virtual time"
        );
    }

    #[test]
    fn virtual_time_reliable_fault_recovery_is_instant_and_deterministic() {
        // A dropped data frame forces an ack-timeout retransmission; in
        // virtual time the 10ms default ack timeout costs no wall time
        // and the healed run is bit-reproducible.
        let run = || {
            let faults = FaultConfig {
                target: Some(crate::fault::TargetedFault {
                    src: 0,
                    dst: 1,
                    class: crate::fault::StreamClass::Data,
                    index: 0,
                    action: crate::fault::FaultAction::Drop,
                }),
                ..Default::default()
            };
            let options = GroupOptions {
                cost: CostModel::free(),
                reliability: ReliabilityConfig::on(),
                faults: Some(faults),
                schedule: Some(ScheduleSpec::seeded(5)),
                ..Default::default()
            };
            run_group_with(2, options, |ep| {
                if ep.rank() == 0 {
                    ep.send(1, 3, Bytes::from_static(b"precious")).unwrap();
                    Bytes::new()
                } else {
                    ep.recv(0, 3).unwrap()
                }
            })
        };
        let started = Instant::now();
        let a = run();
        let b = run();
        assert_eq!(&a.results[1][..], b"precious");
        assert!(a.stats[0].retransmits >= 1, "the drop must force a retry");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.schedule.unwrap().digest(), b.schedule.unwrap().digest());
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "virtual ack timeouts must not consume wall time"
        );
    }

    #[test]
    fn virtual_time_kill_degrades_like_real_time() {
        let options = GroupOptions {
            cost: CostModel::free(),
            faults: Some(FaultConfig {
                kill: Some(crate::fault::KillSpec {
                    rank: 1,
                    after_ops: 0,
                }),
                ..Default::default()
            }),
            schedule: Some(ScheduleSpec::seeded(0)),
            ..Default::default()
        };
        let out = run_group_with(3, options, |ep| {
            let payload = Bytes::from(vec![ep.rank() as u8]);
            if ep.rank() == 0 {
                let mut got = Vec::new();
                for src in 1..3 {
                    got.push(ep.recv(src, 4).ok().map(|b| b[0]));
                }
                got
            } else {
                let _ = ep.send(0, 4, payload);
                Vec::new()
            }
        });
        assert_eq!(out.dead_ranks, vec![1]);
        assert_eq!(out.results[0], vec![None, Some(2)]);
    }

    #[test]
    fn virtual_time_barrier_and_self_send() {
        let options = GroupOptions {
            cost: CostModel::free(),
            schedule: Some(ScheduleSpec::seeded(9)),
            ..Default::default()
        };
        let out = run_group_with(4, options, |ep| {
            ep.barrier();
            ep.send(ep.rank(), 9, Bytes::from(vec![ep.rank() as u8]))
                .unwrap();
            ep.barrier();
            ep.recv(ep.rank(), 9).unwrap()[0]
        });
        assert_eq!(out.results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn noop_fault_config_is_ignored() {
        let options = GroupOptions {
            cost: CostModel::free(),
            faults: Some(FaultConfig::default()),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            ep.exchange(1 - ep.rank(), 0, Bytes::from_static(b"ok"))
                .unwrap()
                .len()
        });
        assert_eq!(out.results, vec![2, 2]);
        assert!(out.dead_ranks.is_empty());
    }
}
