//! Spawning a group of rank threads.

use std::sync::Arc;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::endpoint::{Endpoint, Message};
use crate::stats::TrafficStats;

/// The outcome of a group run: each rank's return value plus its traffic.
#[derive(Debug)]
pub struct GroupRun<R> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank traffic stats, indexed by rank.
    pub stats: Vec<TrafficStats>,
}

impl<R> GroupRun<R> {
    /// The paper's `M_max`: maximum bytes received by any rank.
    pub fn m_max(&self) -> u64 {
        crate::stats::m_max(&self.stats)
    }

    /// Maximum modeled communication time over ranks, in seconds.
    pub fn max_comm_seconds(&self) -> f64 {
        crate::stats::max_comm_seconds(&self.stats)
    }
}

/// Runs `f` on `size` simulated processors and collects results.
///
/// Every rank runs on its own OS thread with a private [`Endpoint`]; rank
/// threads share nothing else. A panic on any rank propagates (the group
/// run panics), so test assertions may live inside rank functions.
///
/// ```
/// use bytes::Bytes;
/// use vr_comm::{run_group, CostModel};
///
/// // Each rank sends its id to the next rank around a ring.
/// let out = run_group(4, CostModel::sp2(), |ep| {
///     let next = (ep.rank() + 1) % ep.size();
///     let prev = (ep.rank() + ep.size() - 1) % ep.size();
///     ep.send(next, 0, Bytes::from(vec![ep.rank() as u8]));
///     ep.recv(prev, 0).unwrap()[0] as usize
/// });
/// assert_eq!(out.results, vec![3, 0, 1, 2]);
/// assert!(out.m_max() > 0);
/// ```
pub fn run_group<R, F>(size: usize, cost: CostModel, f: F) -> GroupRun<R>
where
    R: Send,
    F: Fn(&mut Endpoint) -> R + Sync,
{
    assert!(size >= 1, "group must have at least one rank");

    // Wire one dedicated channel per ordered (src, dst) pair so selective
    // receive-by-source never reorders unrelated messages.
    let mut senders_by_dst: Vec<Vec<crossbeam::channel::Sender<Message>>> =
        (0..size).map(|_| Vec::with_capacity(size)).collect();
    let mut receivers_by_dst: Vec<Vec<crossbeam::channel::Receiver<Message>>> =
        (0..size).map(|_| Vec::with_capacity(size)).collect();
    for dst in 0..size {
        for _src in 0..size {
            let (tx, rx) = unbounded();
            senders_by_dst[dst].push(tx);
            receivers_by_dst[dst].push(rx);
        }
    }

    let barrier = Arc::new(std::sync::Barrier::new(size));

    // Build each rank's endpoint: `to[dst]` = sender into dst's slot for
    // this rank; `from[src]` = this rank's receiver slot for src.
    let mut endpoints: Vec<Endpoint> = Vec::with_capacity(size);
    for rank in 0..size {
        let from = std::mem::take(&mut receivers_by_dst[rank]);
        let to = (0..size)
            .map(|dst| senders_by_dst[dst][rank].clone())
            .collect();
        endpoints.push(Endpoint::new(
            rank,
            size,
            to,
            from,
            Arc::clone(&barrier),
            cost,
        ));
    }
    drop(senders_by_dst);

    let slots: Mutex<Vec<Option<(R, TrafficStats)>>> =
        Mutex::new((0..size).map(|_| None).collect());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for mut ep in endpoints {
            let rank = ep.rank();
            let fr = &f;
            let res = &slots;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        let r = fr(&mut ep);
                        res.lock()[rank] = Some((r, ep.into_stats()));
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut results_out = Vec::with_capacity(size);
    let mut stats_out = Vec::with_capacity(size);
    for slot in slots.into_inner() {
        let (r, s) = slot.expect("rank thread completed without storing a result");
        results_out.push(r);
        stats_out.push(s);
    }
    GroupRun {
        results: results_out,
        stats: stats_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_group_runs() {
        let out = run_group(1, CostModel::free(), |ep| ep.rank() + ep.size());
        assert_eq!(out.results, vec![1]);
        assert_eq!(out.stats.len(), 1);
    }

    #[test]
    fn results_indexed_by_rank() {
        let out = run_group(16, CostModel::free(), |ep| ep.rank() * 2);
        assert_eq!(out.results, (0..16).map(|r| r * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn zero_size_group_rejected() {
        let _ = run_group(0, CostModel::free(), |_| ());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        let _ = run_group(4, CostModel::free(), |ep| {
            if ep.rank() == 2 {
                panic!("boom");
            }
        });
    }
}
