//! Reliable-delivery framing: sequence numbers, CRC32 integrity, and
//! the retry policy of the stop-and-wait ARQ the endpoint runs when
//! reliability is enabled.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [kind: u8][seq: u32][crc: u32][payload...]
//! ```
//!
//! `kind` is [`FRAME_DATA`] or [`FRAME_ACK`]; `crc` is CRC-32
//! (IEEE 802.3, polynomial 0xEDB88320) over `kind`, `seq` and the
//! payload, so a flipped bit anywhere in the frame is detected. Acks
//! carry the sequence number they acknowledge and an empty payload.

use std::time::Duration;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Application data frame.
pub const FRAME_DATA: u8 = 1;
/// Acknowledgement frame.
pub const FRAME_ACK: u8 = 2;
/// Bytes of framing prepended to every payload.
pub const HEADER_LEN: usize = 1 + 4 + 4;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) over the concatenation of `parts`.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

/// A decoded frame, borrowing its payload from the wire buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// [`FRAME_DATA`] or [`FRAME_ACK`].
    pub kind: u8,
    /// Link-local sequence number.
    pub seq: u32,
    /// Application payload (empty for acks).
    pub payload: Bytes,
}

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed header.
    Truncated,
    /// CRC mismatch: the frame was corrupted in transit.
    BadCrc,
    /// Unknown `kind` byte (header corruption the CRC caught late, or
    /// a non-framed message on a reliable link).
    BadKind,
}

/// Wraps `payload` in a frame of `kind` with sequence number `seq`.
pub fn encode_frame(kind: u8, seq: u32, payload: &[u8]) -> Bytes {
    let seq_bytes = seq.to_le_bytes();
    let crc = crc32(&[&[kind], &seq_bytes, payload]);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&seq_bytes);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    Bytes::from(buf)
}

/// Parses and integrity-checks a frame off the wire.
pub fn decode_frame(raw: &Bytes) -> Result<Frame, FrameError> {
    if raw.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let kind = raw[0];
    let seq = u32::from_le_bytes([raw[1], raw[2], raw[3], raw[4]]);
    let stored_crc = u32::from_le_bytes([raw[5], raw[6], raw[7], raw[8]]);
    let payload = raw.slice(HEADER_LEN..);
    let actual = crc32(&[&[kind], &seq.to_le_bytes(), &payload]);
    if actual != stored_crc {
        return Err(FrameError::BadCrc);
    }
    if kind != FRAME_DATA && kind != FRAME_ACK {
        return Err(FrameError::BadKind);
    }
    Ok(Frame { kind, seq, payload })
}

/// Retry policy of the stop-and-wait ARQ.
///
/// Disabled by default: the endpoint then sends unframed messages with
/// zero per-message overhead, byte-identical to a build without the
/// reliability layer at all.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Whether framing/ack/retransmit is active.
    pub enabled: bool,
    /// How long the sender waits for an ack before the first retransmit.
    pub ack_timeout: Duration,
    /// Retransmissions attempted before giving up on the peer
    /// ([`SendErrorKind::RetryBudgetExhausted`]).
    ///
    /// [`SendErrorKind::RetryBudgetExhausted`]: crate::SendErrorKind::RetryBudgetExhausted
    pub max_retries: u32,
    /// Multiplier applied to the ack timeout after each failed attempt.
    pub backoff: f64,
    /// Ceiling on the backed-off wait between retransmits.
    pub max_backoff: Duration,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            ack_timeout: Duration::from_millis(10),
            max_retries: 8,
            backoff: 2.0,
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl ReliabilityConfig {
    /// The default policy with reliability switched on.
    pub fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// How long to wait for an ack on retransmission `attempt`
    /// (0 = the initial send): exponential backoff, capped.
    pub fn retry_delay(&self, attempt: u32) -> Duration {
        let base = self.ack_timeout.as_secs_f64() * self.backoff.powi(attempt.min(32) as i32);
        Duration::from_secs_f64(base.min(self.max_backoff.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_ieee_check_value() {
        // The standard CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
    }

    #[test]
    fn crc32_over_parts_equals_concatenation() {
        assert_eq!(crc32(&[b"1234", b"56789"]), crc32(&[b"123456789"]));
        assert_eq!(crc32(&[b"", b"abc", b""]), crc32(&[b"abc"]));
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"subimage bytes".as_slice();
        let wire = encode_frame(FRAME_DATA, 7, payload);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let frame = decode_frame(&wire).unwrap();
        assert_eq!(frame.kind, FRAME_DATA);
        assert_eq!(frame.seq, 7);
        assert_eq!(&frame.payload[..], payload);
    }

    #[test]
    fn ack_frame_round_trips_empty() {
        let wire = encode_frame(FRAME_ACK, 12, &[]);
        assert_eq!(wire.len(), HEADER_LEN);
        let frame = decode_frame(&wire).unwrap();
        assert_eq!(frame.kind, FRAME_ACK);
        assert_eq!(frame.seq, 12);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn flipped_bit_is_detected_anywhere() {
        let wire = encode_frame(FRAME_DATA, 3, b"payload");
        for i in 0..wire.len() {
            let mut bad: Vec<u8> = wire.to_vec();
            bad[i] ^= 0x40;
            let got = decode_frame(&Bytes::from(bad));
            assert!(got.is_err(), "corruption at byte {i} went undetected");
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let wire = encode_frame(FRAME_DATA, 1, b"x");
        let short = wire.slice(..HEADER_LEN - 1);
        assert_eq!(decode_frame(&short), Err(FrameError::Truncated));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = ReliabilityConfig::on();
        assert_eq!(cfg.retry_delay(0), Duration::from_millis(10));
        assert_eq!(cfg.retry_delay(1), Duration::from_millis(20));
        assert_eq!(cfg.retry_delay(2), Duration::from_millis(40));
        assert_eq!(cfg.retry_delay(10), cfg.max_backoff);
        assert_eq!(cfg.retry_delay(1_000_000), cfg.max_backoff);
    }
}
