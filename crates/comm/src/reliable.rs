//! Reliable-delivery framing: sequence numbers, CRC32 integrity, and
//! the retry policy of the stop-and-wait ARQ the endpoint runs when
//! reliability is enabled.
//!
//! The byte layout and integrity check live in the shared codec
//! ([`crate::frame`]); this module pins down the reliable link's
//! closed kind set ([`FRAME_DATA`] / [`FRAME_ACK`]) and the ARQ
//! retry policy. Acks carry the sequence number they acknowledge and
//! an empty payload.

use std::time::Duration;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

pub use crate::frame::{crc32, encode_frame, Frame, FrameError, HEADER_LEN};

/// Application data frame.
pub const FRAME_DATA: u8 = 1;
/// Acknowledgement frame.
pub const FRAME_ACK: u8 = 2;

/// Parses and integrity-checks a reliable-link frame off the wire.
///
/// On top of the shared codec's CRC check, rejects any kind byte
/// outside the reliable link's closed set with [`FrameError::BadKind`].
pub fn decode_frame(raw: &Bytes) -> Result<Frame, FrameError> {
    let frame = crate::frame::decode_frame(raw)?;
    if frame.kind != FRAME_DATA && frame.kind != FRAME_ACK {
        return Err(FrameError::BadKind);
    }
    Ok(frame)
}

/// Retry policy of the stop-and-wait ARQ.
///
/// Disabled by default: the endpoint then sends unframed messages with
/// zero per-message overhead, byte-identical to a build without the
/// reliability layer at all.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Whether framing/ack/retransmit is active.
    pub enabled: bool,
    /// How long the sender waits for an ack before the first retransmit.
    pub ack_timeout: Duration,
    /// Retransmissions attempted before giving up on the peer
    /// ([`SendErrorKind::RetryBudgetExhausted`]).
    ///
    /// [`SendErrorKind::RetryBudgetExhausted`]: crate::SendErrorKind::RetryBudgetExhausted
    pub max_retries: u32,
    /// Multiplier applied to the ack timeout after each failed attempt.
    pub backoff: f64,
    /// Ceiling on the backed-off wait between retransmits.
    pub max_backoff: Duration,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            enabled: false,
            ack_timeout: Duration::from_millis(10),
            max_retries: 8,
            backoff: 2.0,
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl ReliabilityConfig {
    /// The default policy with reliability switched on.
    pub fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// How long to wait for an ack on retransmission `attempt`
    /// (0 = the initial send): exponential backoff, capped.
    pub fn retry_delay(&self, attempt: u32) -> Duration {
        let base = self.ack_timeout.as_secs_f64() * self.backoff.powi(attempt.min(32) as i32);
        Duration::from_secs_f64(base.min(self.max_backoff.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = b"subimage bytes".as_slice();
        let wire = encode_frame(FRAME_DATA, 7, payload);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let frame = decode_frame(&wire).unwrap();
        assert_eq!(frame.kind, FRAME_DATA);
        assert_eq!(frame.seq, 7);
        assert_eq!(&frame.payload[..], payload);
    }

    #[test]
    fn ack_frame_round_trips_empty() {
        let wire = encode_frame(FRAME_ACK, 12, &[]);
        assert_eq!(wire.len(), HEADER_LEN);
        let frame = decode_frame(&wire).unwrap();
        assert_eq!(frame.kind, FRAME_ACK);
        assert_eq!(frame.seq, 12);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn flipped_bit_is_detected_anywhere() {
        let wire = encode_frame(FRAME_DATA, 3, b"payload");
        for i in 0..wire.len() {
            let mut bad: Vec<u8> = wire.to_vec();
            bad[i] ^= 0x40;
            let got = decode_frame(&Bytes::from(bad));
            assert!(got.is_err(), "corruption at byte {i} went undetected");
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let wire = encode_frame(FRAME_DATA, 1, b"x");
        let short = wire.slice(..HEADER_LEN - 1);
        assert_eq!(decode_frame(&short), Err(FrameError::Truncated));
    }

    #[test]
    fn unknown_kind_rejected_on_reliable_link() {
        // The shared codec accepts any CRC-valid kind; the reliable
        // link's closed set must still reject it.
        let wire = encode_frame(0x77, 1, b"x");
        assert_eq!(decode_frame(&wire), Err(FrameError::BadKind));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = ReliabilityConfig::on();
        assert_eq!(cfg.retry_delay(0), Duration::from_millis(10));
        assert_eq!(cfg.retry_delay(1), Duration::from_millis(20));
        assert_eq!(cfg.retry_delay(2), Duration::from_millis(40));
        assert_eq!(cfg.retry_delay(10), cfg.max_backoff);
        assert_eq!(cfg.retry_delay(1_000_000), cfg.max_backoff);
    }
}
