//! Deterministic virtual-time scheduling for the message substrate.
//!
//! In real-time mode the simulator's rank threads race: message arrival
//! order, ack timeouts and receive deadlines all depend on the host
//! scheduler, so a run is only *statistically* reproducible. This module
//! replaces wall-clock time with **discrete-event virtual time** driven
//! by the group's [`CostModel`]: every in-flight message carries a ready
//! time `clock[src] + T_s + bytes·T_c`, receive deadlines and ack
//! timeouts are virtual deadlines, and a fault `delay` is extra virtual
//! latency instead of a `thread::sleep`.
//!
//! Rank threads still run as OS threads, but they only make progress
//! one at a time between *quiescent points*: when every rank is parked
//! on a virtual wait, the [`SimNet`] picks the next event. Whenever two
//! or more events are ready at the same virtual instant (the *ready
//! set*), a seeded [`ScheduleSpec`] decides which fires first — a
//! random-walk fuzzer over delivery orders. Each such decision is a
//! *choice point* recorded in the [`ScheduleTrace`], so a `(seed,
//! prefix)` pair replays the exact interleaving, and
//! [`explore_schedules`] enumerates all alternatives at the first `K`
//! choice points systematically.
//!
//! Messages on one directed link are never reordered (MPI
//! non-overtaking); the controller only permutes *across* links and
//! against deadline expiries tied at the same virtual instant.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::cost::CostModel;
use crate::endpoint::Message;
use crate::fault::splitmix64;

/// A seed plus an optional forced prefix of choices: the complete
/// identity of one deterministic schedule.
///
/// At every choice point with `n > 1` ready events, the controller picks
/// `prefix[i] % n` while forced choices remain, then falls back to a
/// pure hash of `(seed, choice index)` — so the same spec replays the
/// same interleaving bit-for-bit, and specs differing only in `seed`
/// random-walk different interleavings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// Seed of the random-walk choice hash.
    pub seed: u64,
    /// Forced choices for the first `prefix.len()` choice points
    /// (systematic exploration and exact replay).
    pub prefix: Vec<u32>,
}

impl ScheduleSpec {
    /// A pure random-walk spec with no forced prefix.
    pub fn seeded(seed: u64) -> Self {
        ScheduleSpec {
            seed,
            prefix: Vec::new(),
        }
    }
}

/// One recorded scheduling decision: `picked` out of `arity` ready
/// events (only points with `arity > 1` are recorded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Size of the ready set at this point.
    pub arity: u32,
    /// Index chosen, in canonical ready-set order.
    pub picked: u32,
}

/// What a virtual-time run did: every choice point, the event count and
/// the final virtual clock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScheduleTrace {
    /// Every choice point in order (ready sets of size ≥ 2 only).
    pub decisions: Vec<ChoicePoint>,
    /// Total events processed (deliveries + deadline expiries).
    pub events: u64,
    /// Maximum rank clock at the end of the run, in virtual seconds.
    pub virtual_seconds: f64,
}

impl ScheduleTrace {
    /// Order-sensitive digest of the decision log — two runs with equal
    /// digests took the identical schedule path.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for d in &self.decisions {
            mix(d.arity as u64);
            mix(d.picked as u64);
        }
        mix(self.events);
        h
    }
}

/// What a rank thread is doing, from the scheduler's point of view.
#[derive(Clone, Debug)]
enum Waiter {
    /// Executing user code (not parked).
    Running,
    /// Blocked in a selective receive from `src`.
    RecvFrom { src: usize, deadline: f64 },
    /// Blocked until *any* frame arrives, the virtual deadline passes,
    /// or the watched link goes dead (reliable-mode waits).
    AnyFrame {
        watch: Option<usize>,
        deadline: Option<f64>,
    },
    /// Blocked in a group barrier that started at generation `gen`.
    Barrier { gen: u64 },
    /// Finished its work; wakes on any frame or group completion.
    Linger,
    /// Endpoint dropped; the rank no longer participates.
    Done,
}

/// One message in flight on a directed link.
#[derive(Debug)]
struct Flight {
    msg: Message,
    /// Virtual instant at which the message becomes deliverable.
    ready: f64,
}

/// A delivered message waiting in a rank's per-source inbox.
#[derive(Debug)]
struct Arrived {
    msg: Message,
    /// Virtual delivery instant (advances the receiver's clock).
    at: f64,
}

/// Outcome of a blocking virtual receive.
#[derive(Debug, PartialEq, Eq)]
pub enum VRecvError {
    /// The virtual deadline passed with no message.
    Timeout,
    /// The peer closed and nothing is (or ever will be) in flight.
    Disconnected,
}

/// Outcome of [`SimNet::wait_any`].
#[derive(Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// At least one frame is waiting in some inbox.
    Frames,
    /// The virtual deadline passed first.
    Timeout,
    /// The watched peer closed with nothing in flight from it.
    PeerClosed,
}

/// Outcome of [`SimNet::linger`].
#[derive(Debug, PartialEq, Eq)]
pub enum LingerOutcome {
    /// Frames arrived; the caller should pump them.
    Frames,
    /// Every rank in the group has finished its work.
    GroupDone,
}

/// An event the scheduler can fire next.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Deliver the head-of-queue flight on link `src → dst`.
    Deliver { src: usize, dst: usize },
    /// Expire rank `rank`'s current virtual deadline.
    Expire { rank: usize, at: f64 },
}

struct SimState {
    size: usize,
    /// Per-rank virtual clock, seconds.
    clock: Vec<f64>,
    /// Ranks currently executing user code (not parked, not done).
    running: usize,
    /// `queues[src][dst]`: in-flight messages, FIFO per directed link.
    queues: Vec<Vec<VecDeque<Flight>>>,
    /// `inbox[dst][src]`: delivered messages awaiting the receiver.
    inbox: Vec<Vec<VecDeque<Arrived>>>,
    waiters: Vec<Waiter>,
    /// Rank's current virtual deadline has expired.
    fired: Vec<bool>,
    /// Rank's endpoint has been dropped.
    closed: Vec<bool>,
    /// Ranks whose group closure has returned.
    finished: usize,
    barrier_count: usize,
    barrier_gen: u64,
    spec: ScheduleSpec,
    choices_taken: usize,
    trace: ScheduleTrace,
    /// Fatal scheduler condition (virtual deadlock); every parked rank
    /// panics with this message instead of hanging.
    failure: Option<String>,
}

/// The shared discrete-event network of one virtual-time group run.
///
/// Created by the group runner when [`crate::GroupOptions::schedule`]
/// is set; one `Arc<SimNet>` is shared by every endpoint.
pub struct SimNet {
    state: Mutex<SimState>,
    cv: Condvar,
    cost: CostModel,
}

impl SimNet {
    /// A fresh network for `size` ranks under `spec`.
    pub fn new(size: usize, cost: CostModel, spec: ScheduleSpec) -> Arc<Self> {
        Arc::new(SimNet {
            state: Mutex::new(SimState {
                size,
                clock: vec![0.0; size],
                running: size,
                queues: (0..size)
                    .map(|_| (0..size).map(|_| VecDeque::new()).collect())
                    .collect(),
                inbox: (0..size)
                    .map(|_| (0..size).map(|_| VecDeque::new()).collect())
                    .collect(),
                waiters: (0..size).map(|_| Waiter::Running).collect(),
                fired: vec![false; size],
                closed: vec![false; size],
                finished: 0,
                barrier_count: 0,
                barrier_gen: 0,
                spec,
                choices_taken: 0,
                trace: ScheduleTrace::default(),
                failure: None,
            }),
            cv: Condvar::new(),
            cost,
        })
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        // A rank that panics never holds the lock (see `park`), but stay
        // robust against poisoning from unforeseen paths.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// This rank's current virtual clock, seconds.
    pub fn now(&self, rank: usize) -> f64 {
        self.lock().clock[rank]
    }

    /// Queues one message on the `src → dst` link. Non-blocking (sends
    /// are buffered, as in raw channel mode). `extra_delay` is
    /// additional virtual latency (fault injection). `Err` means the
    /// destination endpoint is already closed.
    // Unit error mirrors the raw channel-send convention in `Endpoint`;
    // "peer closed" is the only failure and carries no extra detail.
    #[allow(clippy::result_unit_err)]
    pub fn send(&self, src: usize, dst: usize, msg: Message, extra_delay: f64) -> Result<(), ()> {
        let mut st = self.lock();
        if st.closed[dst] {
            return Err(());
        }
        let latency = self.cost.message_seconds(msg.payload.len()) + extra_delay;
        let at = st.clock[src] + latency;
        // Non-overtaking: a message never arrives before one sent
        // earlier on the same directed link.
        let ready = st.queues[src][dst]
            .back()
            .map_or(at, |tail| tail.ready.max(at));
        st.queues[src][dst].push_back(Flight { msg, ready });
        Ok(())
    }

    /// Blocking selective receive from `src` with an absolute virtual
    /// `deadline` (seconds).
    pub fn recv_from(&self, rank: usize, src: usize, deadline: f64) -> Result<Message, VRecvError> {
        self.park(rank, Waiter::RecvFrom { src, deadline }, move |st| {
            if let Some(arr) = st.inbox[rank][src].pop_front() {
                st.clock[rank] = st.clock[rank].max(arr.at);
                return Some(Ok(arr.msg));
            }
            if st.fired[rank] {
                return Some(Err(VRecvError::Timeout));
            }
            if st.closed[src] && st.queues[src][rank].is_empty() {
                return Some(Err(VRecvError::Disconnected));
            }
            None
        })
    }

    /// Drains every delivered message for `rank` (all sources, FIFO per
    /// source, sources in ascending order), advancing the rank's clock
    /// to the latest arrival. The second return lists sources that are
    /// closed with nothing left in flight — the virtual analogue of a
    /// drained, disconnected channel.
    pub fn drain(&self, rank: usize) -> (Vec<(usize, Message)>, Vec<bool>) {
        let mut st = self.lock();
        let mut msgs = Vec::new();
        let mut t = st.clock[rank];
        for src in 0..st.size {
            while let Some(arr) = st.inbox[rank][src].pop_front() {
                t = t.max(arr.at);
                msgs.push((src, arr.msg));
            }
        }
        st.clock[rank] = t;
        let dead = (0..st.size)
            .map(|src| {
                st.closed[src] && st.queues[src][rank].is_empty() && st.inbox[rank][src].is_empty()
            })
            .collect();
        (msgs, dead)
    }

    /// Parks until any frame arrives for `rank`, the absolute virtual
    /// `deadline` passes, or the watched peer's link goes dead.
    pub fn wait_any(
        &self,
        rank: usize,
        watch: Option<usize>,
        deadline: Option<f64>,
    ) -> WaitOutcome {
        self.park(rank, Waiter::AnyFrame { watch, deadline }, move |st| {
            if (0..st.size).any(|src| !st.inbox[rank][src].is_empty()) {
                return Some(WaitOutcome::Frames);
            }
            if st.fired[rank] {
                return Some(WaitOutcome::Timeout);
            }
            if let Some(w) = watch {
                if st.closed[w] && st.queues[w][rank].is_empty() && st.inbox[rank][w].is_empty() {
                    return Some(WaitOutcome::PeerClosed);
                }
            }
            None
        })
    }

    /// Parks a finished rank until frames arrive (to be re-acked) or
    /// the whole group is done.
    pub fn linger(&self, rank: usize) -> LingerOutcome {
        self.park(rank, Waiter::Linger, move |st| {
            if (0..st.size).any(|src| !st.inbox[rank][src].is_empty()) {
                return Some(LingerOutcome::Frames);
            }
            if st.finished >= st.size {
                return Some(LingerOutcome::GroupDone);
            }
            None
        })
    }

    /// Group barrier in virtual time: the last arriver synchronises
    /// every rank clock to the group maximum.
    pub fn barrier(&self, rank: usize) {
        let gen = {
            let mut st = self.lock();
            let gen = st.barrier_gen;
            st.barrier_count += 1;
            if st.barrier_count == st.size {
                let t = st.clock.iter().copied().fold(0.0f64, f64::max);
                st.clock.iter_mut().for_each(|c| *c = t);
                st.barrier_count = 0;
                st.barrier_gen += 1;
                drop(st);
                self.cv.notify_all();
                return;
            }
            gen
        };
        self.park(rank, Waiter::Barrier { gen }, move |st| {
            (st.barrier_gen > gen).then_some(())
        });
    }

    /// Records that `rank`'s group closure returned. Must be called
    /// *after* any external completion counter is updated, so a
    /// [`LingerOutcome::GroupDone`] wake observes that counter at its
    /// final value.
    pub fn finish_rank(&self, _rank: usize) {
        let mut st = self.lock();
        st.finished += 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Marks `rank`'s endpoint dropped: its unread mail is discarded and
    /// it stops counting as runnable. Messages it already sent remain in
    /// flight (a buffered send outlives its sender, as with channels).
    pub fn close_rank(&self, rank: usize) {
        let mut st = self.lock();
        st.closed[rank] = true;
        st.waiters[rank] = Waiter::Done;
        st.running -= 1;
        for src in 0..st.size {
            st.queues[src][rank].clear();
            st.inbox[rank][src].clear();
        }
        if st.running == 0 {
            Self::schedule(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Extracts the finished trace (final virtual clock included).
    pub fn take_trace(&self) -> ScheduleTrace {
        let mut st = self.lock();
        st.trace.virtual_seconds = st.clock.iter().copied().fold(0.0f64, f64::max);
        st.trace.clone()
    }

    /// The virtual-deadlock failure, if the run hit one.
    pub fn failure(&self) -> Option<String> {
        self.lock().failure.clone()
    }

    /// The generic blocking primitive: try to claim; otherwise park as
    /// `waiter`, run the scheduler at quiescence, and wait.
    fn park<T>(
        &self,
        rank: usize,
        waiter: Waiter,
        mut claim: impl FnMut(&mut SimState) -> Option<T>,
    ) -> T {
        let mut st = self.lock();
        let mut parked = false;
        loop {
            if let Some(msg) = st.failure.clone() {
                if parked {
                    st.waiters[rank] = Waiter::Running;
                    st.running += 1;
                }
                drop(st);
                panic!("{msg}");
            }
            if let Some(v) = claim(&mut st) {
                if parked {
                    st.waiters[rank] = Waiter::Running;
                    st.fired[rank] = false;
                    st.running += 1;
                }
                return v;
            }
            if !parked {
                st.fired[rank] = false;
                st.waiters[rank] = waiter.clone();
                st.running -= 1;
                parked = true;
                if st.running == 0 {
                    Self::schedule(&mut st);
                    self.cv.notify_all();
                }
                continue; // re-check the claim after scheduling
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// True when `rank`'s parked wait could be claimed right now. Must
    /// mirror the claim closures exactly, or the scheduler would stop
    /// before (or keep running past) a wakeable state.
    fn satisfied(st: &SimState, rank: usize) -> bool {
        match st.waiters[rank] {
            Waiter::Running | Waiter::Done => false,
            Waiter::RecvFrom { src, .. } => {
                !st.inbox[rank][src].is_empty()
                    || st.fired[rank]
                    || (st.closed[src] && st.queues[src][rank].is_empty())
            }
            Waiter::AnyFrame { watch, .. } => {
                (0..st.size).any(|src| !st.inbox[rank][src].is_empty())
                    || st.fired[rank]
                    || watch.is_some_and(|w| {
                        st.closed[w]
                            && st.queues[w][rank].is_empty()
                            && st.inbox[rank][w].is_empty()
                    })
            }
            Waiter::Barrier { gen } => st.barrier_gen > gen,
            Waiter::Linger => {
                (0..st.size).any(|src| !st.inbox[rank][src].is_empty()) || st.finished >= st.size
            }
        }
    }

    /// The discrete-event loop, entered only at quiescence (`running ==
    /// 0`): fires events in virtual-time order — the seeded controller
    /// breaking same-instant ties — until some parked rank can wake.
    fn schedule(st: &mut SimState) {
        if st.failure.is_some() {
            return;
        }
        loop {
            if (0..st.size).any(|r| Self::satisfied(st, r)) {
                return;
            }
            let parked = (0..st.size)
                .filter(|&r| !matches!(st.waiters[r], Waiter::Running | Waiter::Done))
                .count();
            if parked == 0 {
                return; // everyone is done; nothing to drive
            }

            // Candidate events: every link head plus every un-fired
            // deadline, at the minimum virtual instant.
            let mut t_min = f64::INFINITY;
            let mut deliveries: Vec<(f64, usize, usize)> = Vec::new();
            for src in 0..st.size {
                for dst in 0..st.size {
                    if let Some(head) = st.queues[src][dst].front() {
                        deliveries.push((head.ready, src, dst));
                        t_min = t_min.min(head.ready);
                    }
                }
            }
            let mut expiries: Vec<(f64, usize)> = Vec::new();
            for r in 0..st.size {
                if st.fired[r] {
                    continue;
                }
                let deadline = match st.waiters[r] {
                    Waiter::RecvFrom { deadline, .. } => Some(deadline),
                    Waiter::AnyFrame { deadline, .. } => deadline,
                    _ => None,
                };
                if let Some(d) = deadline {
                    // A deadline already in the rank's past still fires
                    // "now" rather than rewinding time.
                    let at = d.max(st.clock[r]);
                    expiries.push((at, r));
                    t_min = t_min.min(at);
                }
            }

            if !t_min.is_finite() {
                let stuck: Vec<String> = (0..st.size)
                    .filter(|&r| !matches!(st.waiters[r], Waiter::Running | Waiter::Done))
                    .map(|r| format!("rank {r}: {:?}", st.waiters[r]))
                    .collect();
                st.failure = Some(format!(
                    "virtual deadlock: no events in flight and no deadlines; parked waiters: [{}]",
                    stuck.join(", ")
                ));
                return;
            }

            // Canonical ready-set order: deliveries by directed link id
            // (src, then dst), then expiries by rank. The link id — not
            // a global send counter — keys the order because it is a
            // pure function of the quiescent state: which OS thread won
            // the lock first while racing sends must not leak into the
            // recorded schedule, or traces would not replay.
            let mut ready: Vec<Event> = Vec::new();
            deliveries.retain(|&(t, ..)| t == t_min);
            deliveries.sort_by_key(|&(_, src, dst)| (src, dst));
            for &(_, src, dst) in &deliveries {
                ready.push(Event::Deliver { src, dst });
            }
            expiries.retain(|&(t, _)| t == t_min);
            expiries.sort_by_key(|&(_, r)| r);
            for &(at, rank) in &expiries {
                ready.push(Event::Expire { rank, at });
            }

            let pick = if ready.len() == 1 {
                0
            } else {
                let n = ready.len() as u32;
                let k = st.choices_taken;
                st.choices_taken += 1;
                let choice = if let Some(&forced) = st.spec.prefix.get(k) {
                    forced % n
                } else {
                    (splitmix64(
                        st.spec
                            .seed
                            .wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ) % n as u64) as u32
                };
                st.trace.decisions.push(ChoicePoint {
                    arity: n,
                    picked: choice,
                });
                choice as usize
            };
            st.trace.events += 1;

            match ready[pick] {
                Event::Deliver { src, dst } => {
                    let flight = st.queues[src][dst]
                        .pop_front()
                        .expect("ready delivery vanished");
                    st.inbox[dst][src].push_back(Arrived {
                        msg: flight.msg,
                        at: flight.ready,
                    });
                }
                Event::Expire { rank, at } => {
                    st.fired[rank] = true;
                    st.clock[rank] = st.clock[rank].max(at);
                }
            }
        }
    }
}

/// Systematic bounded exploration: enumerates every alternative at the
/// first `k` choice points of the schedule tree rooted at `seed`,
/// calling `run` once per distinct forced prefix (the empty prefix —
/// the plain seeded walk — included). Returns each explored spec with
/// the value `run` produced for it.
///
/// `run` executes one full virtual-time group run and returns its
/// result plus the trace whose decision log drives further expansion.
pub fn explore_schedules<T>(
    seed: u64,
    k: usize,
    mut run: impl FnMut(&ScheduleSpec) -> (T, ScheduleTrace),
) -> Vec<(ScheduleSpec, T)> {
    let mut seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
    queue.push_back(Vec::new());
    seen.insert(Vec::new());
    let mut out = Vec::new();
    while let Some(prefix) = queue.pop_front() {
        let spec = ScheduleSpec {
            seed,
            prefix: prefix.clone(),
        };
        let (value, trace) = run(&spec);
        // Branch at every choice point beyond this prefix, up to depth k.
        for d in prefix.len()..trace.decisions.len().min(k) {
            let taken = &trace.decisions[..=d];
            for alt in 0..taken[d].arity {
                if alt == taken[d].picked {
                    continue;
                }
                let mut p: Vec<u32> = taken[..d].iter().map(|c| c.picked).collect();
                p.push(alt);
                if seen.insert(p.clone()) {
                    queue.push_back(p);
                }
            }
        }
        out.push((spec, value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Instant;

    fn msg(tag: u32, byte: u8) -> Message {
        Message {
            tag,
            payload: Bytes::from(vec![byte]),
        }
    }

    /// Runs `f(rank, &sim)` on `size` threads over a fresh SimNet.
    fn with_ranks<R: Send>(
        size: usize,
        spec: ScheduleSpec,
        cost: CostModel,
        f: impl Fn(usize, &SimNet) -> R + Sync,
    ) -> (Vec<R>, ScheduleTrace) {
        let sim = SimNet::new(size, cost, spec);
        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let sim = Arc::clone(&sim);
                    let f = &f;
                    scope.spawn(move || {
                        let r = f(rank, &sim);
                        sim.finish_rank(rank);
                        sim.close_rank(rank);
                        r
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });
        let trace = sim.take_trace();
        (results.into_iter().map(Option::unwrap).collect(), trace)
    }

    #[test]
    fn delivery_advances_receiver_clock_by_cost() {
        let cost = CostModel {
            t_s: 1e-3,
            t_c: 1e-6,
        };
        let (clocks, _) = with_ranks(2, ScheduleSpec::default(), cost, |rank, sim| {
            if rank == 0 {
                sim.send(0, 1, msg(0, 7), 0.0).unwrap();
                sim.now(0)
            } else {
                let got = sim.recv_from(1, 0, 60.0).unwrap();
                assert_eq!(got.payload[0], 7);
                sim.now(1)
            }
        });
        assert_eq!(clocks[0], 0.0, "sends are buffered; sender does not wait");
        let expect = 1e-3 + 1.0 * 1e-6;
        assert!(
            (clocks[1] - expect).abs() < 1e-15,
            "receiver clock {} != {expect}",
            clocks[1]
        );
    }

    #[test]
    fn virtual_deadline_fires_instantly_in_wall_time() {
        let wall = Instant::now();
        let (out, _) = with_ranks(
            2,
            ScheduleSpec::default(),
            CostModel::free(),
            |rank, sim| {
                if rank == 0 {
                    // A 60-virtual-second deadline with nothing in flight.
                    let r = sim.recv_from(0, 1, 60.0);
                    (r.err(), sim.now(0))
                } else {
                    // Stay parked past rank 0's deadline so its timeout
                    // (not our endpoint closing) fires first; once rank 0
                    // closes, this wait resolves as a disconnect.
                    let r = sim.recv_from(1, 0, 120.0);
                    (r.err(), 0.0)
                }
            },
        );
        assert_eq!(out[0].0, Some(VRecvError::Timeout));
        assert_eq!(out[0].1, 60.0, "the clock jumped to the deadline");
        assert!(
            wall.elapsed().as_secs() < 30,
            "virtual waiting must not consume wall-clock time"
        );
    }

    #[test]
    fn closed_sender_reports_disconnected_after_drain() {
        let (out, _) = with_ranks(
            2,
            ScheduleSpec::default(),
            CostModel::free(),
            |rank, sim| {
                if rank == 0 {
                    sim.send(0, 1, msg(3, 9), 0.0).unwrap();
                    0
                } else {
                    // The buffered message survives the sender's exit...
                    let got = sim.recv_from(1, 0, 60.0).unwrap();
                    assert_eq!(got.payload[0], 9);
                    // ...and only then does the link read as dead.
                    match sim.recv_from(1, 0, 60.0) {
                        Err(VRecvError::Disconnected) => 1,
                        other => panic!("expected disconnect, got {other:?}"),
                    }
                }
            },
        );
        assert_eq!(out, vec![0, 1]);
    }

    /// Three senders racing into one receiver at the same instant: the
    /// ready set has arity 3, then 2 — the controller's playground.
    fn race_order(spec: ScheduleSpec) -> (Vec<u8>, ScheduleTrace) {
        let (out, trace) = with_ranks(4, spec, CostModel::free(), |rank, sim| {
            if rank == 0 {
                let mut order = Vec::new();
                while order.len() < 3 {
                    sim.wait_any(0, None, Some(600.0));
                    let (msgs, _) = sim.drain(0);
                    for (_, m) in msgs {
                        order.push(m.payload[0]);
                    }
                }
                order
            } else {
                sim.send(rank, 0, msg(0, rank as u8), 0.0).unwrap();
                Vec::new()
            }
        });
        (out[0].clone(), trace)
    }

    #[test]
    fn same_seed_replays_identical_order_and_trace() {
        let (a, ta) = race_order(ScheduleSpec::seeded(42));
        let (b, tb) = race_order(ScheduleSpec::seeded(42));
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        assert_eq!(ta.digest(), tb.digest());
        assert!(
            !ta.decisions.is_empty(),
            "three same-instant arrivals must create choice points"
        );
    }

    #[test]
    fn different_seeds_permute_delivery_order() {
        let orders: std::collections::HashSet<Vec<u8>> = (0..16u64)
            .map(|s| race_order(ScheduleSpec::seeded(s)).0)
            .collect();
        assert!(
            orders.len() > 1,
            "16 seeds all produced the same delivery order"
        );
    }

    #[test]
    fn prefix_forces_the_choice() {
        // At the first choice point the ready set is the three
        // deliveries in (src, dst) link order; forcing index i must
        // hand the receiver sender i+1's message first.
        for forced in 0..3u32 {
            let (order, trace) = race_order(ScheduleSpec {
                seed: 7,
                prefix: vec![forced],
            });
            assert_eq!(trace.decisions[0].picked, forced);
            assert_eq!(
                order[0],
                (forced + 1) as u8,
                "forced choice {forced} must deliver that sender first"
            );
        }
    }

    #[test]
    fn explore_schedules_covers_first_choice_point_exhaustively() {
        let runs = explore_schedules(3, 1, |spec| {
            let (order, trace) = race_order(spec.clone());
            (order, trace)
        });
        // Empty prefix + the 2 alternatives at the arity-3 first point.
        assert_eq!(runs.len(), 3);
        let firsts: std::collections::HashSet<u8> =
            runs.iter().map(|(_, order)| order[0]).collect();
        assert_eq!(firsts.len(), 3, "all three first-deliveries explored");
    }

    #[test]
    fn virtual_deadlock_panics_instead_of_hanging() {
        let wall = Instant::now();
        let sim = SimNet::new(2, CostModel::free(), ScheduleSpec::default());
        let result = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|rank| {
                    let sim = Arc::clone(&sim);
                    scope.spawn(move || {
                        // Both ranks linger forever without finishing:
                        // no events, no deadlines — a true deadlock.
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            sim.linger(rank)
                        }));
                        sim.close_rank(rank);
                        r.is_err()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        assert!(result.iter().all(|&panicked| panicked));
        assert!(sim.failure().unwrap().contains("virtual deadlock"));
        assert!(wall.elapsed().as_secs() < 30);
    }

    #[test]
    fn barrier_synchronises_clocks_to_group_max() {
        let cost = CostModel { t_s: 1.0, t_c: 0.0 };
        let (clocks, _) = with_ranks(3, ScheduleSpec::default(), cost, |rank, sim| {
            if rank == 0 {
                // Rank 0 receives one message, advancing its clock to 1s.
                let _ = sim.recv_from(0, 1, 60.0).unwrap();
            } else if rank == 1 {
                sim.send(1, 0, msg(0, 1), 0.0).unwrap();
            }
            sim.barrier(rank);
            sim.now(rank)
        });
        assert!(clocks.iter().all(|&c| c == clocks[0]));
        assert_eq!(clocks[0], 1.0);
    }

    #[test]
    fn non_overtaking_within_one_link() {
        // Even under adversarial seeds, two messages on the same link
        // always arrive in send order.
        for seed in 0..8u64 {
            let (out, _) = with_ranks(
                2,
                ScheduleSpec::seeded(seed),
                CostModel::free(),
                |rank, sim| {
                    if rank == 0 {
                        sim.send(0, 1, msg(0, 1), 0.0).unwrap();
                        sim.send(0, 1, msg(0, 2), 0.0).unwrap();
                        Vec::new()
                    } else {
                        let a = sim.recv_from(1, 0, 60.0).unwrap();
                        let b = sim.recv_from(1, 0, 60.0).unwrap();
                        vec![a.payload[0], b.payload[0]]
                    }
                },
            );
            assert_eq!(out[1], vec![1, 2], "seed {seed} reordered a link");
        }
    }
}
