//! A thread-based distributed-memory message-passing substrate.
//!
//! The paper evaluates on an IBM SP2 with MPI over the High Performance
//! Switch. This crate substitutes that testbed with *simulated processors*:
//! each rank is an OS thread with private state, and ranks communicate
//! exclusively through byte messages over per-pair channels — the same
//! matched send/receive semantics MPI point-to-point provides.
//!
//! Two quantities drive every comparison in the paper:
//!
//! * **exact message byte counts** — recorded per rank by
//!   [`TrafficStats`], giving the maximum-received-message-size metric
//!   `M_max` of Section 4;
//! * **modeled communication time** — `T_s + bytes · T_c` per message via
//!   a [`CostModel`], with an [SP2 preset](CostModel::sp2) calibrated to
//!   the HPS (≈ 40 µs latency, ≈ 35 MB/s bandwidth).
//!
//! Computation time is handled separately (measured per-thread CPU time
//! or modeled from operation counts); see `slsvr-core`.

pub mod collectives;
pub mod cost;
pub mod endpoint;
pub mod fault;
pub mod frame;
pub mod group;
pub mod reliable;
pub mod stats;
pub mod trace;
pub mod vclock;

pub use collectives::{all_gather, broadcast, reduce, scatter};
pub use cost::CostModel;
pub use endpoint::{
    CommError, Endpoint, Message, RecvError, SendError, SendErrorKind, Tag, DEFAULT_RECV_DEADLINE,
};
pub use fault::{FaultAction, FaultConfig, FaultPlan, KillSpec, StreamClass, TargetedFault};
pub use frame::{crc32, read_frame, write_frame, Frame, FrameError, StreamError, HEADER_LEN};
pub use group::{run_group, run_group_with, GroupOptions, GroupRun};
pub use reliable::ReliabilityConfig;
pub use stats::TrafficStats;
pub use trace::{run_group_traced, Trace, TraceEvent, Tracer};
pub use vclock::{explore_schedules, ChoicePoint, ScheduleSpec, ScheduleTrace, SimNet};
