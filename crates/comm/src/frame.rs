//! The shared framing codec: CRC32-checked frames for in-memory
//! message links and their length-prefixed form for byte streams.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [kind: u8][seq: u32][crc: u32][payload...]
//! ```
//!
//! `crc` is CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `kind`,
//! `seq` and the payload, so a flipped bit anywhere in the frame is
//! detected. On a byte stream (TCP) the same frame is preceded by a
//! `u32` little-endian length prefix covering header plus payload:
//!
//! ```text
//! [len: u32][kind: u8][seq: u32][crc: u32][payload...]
//! ```
//!
//! Two consumers share this module: the reliable-delivery layer of
//! [`crate::endpoint`] (in-memory frames, [`encode_frame`] /
//! [`decode_frame`]) and the serving daemon's socket edge
//! ([`write_frame`] / [`read_frame`]). One framing implementation,
//! not two.

use std::fmt;
use std::io::{self, Read, Write};

use bytes::Bytes;

/// Bytes of framing prepended to every payload.
pub const HEADER_LEN: usize = 1 + 4 + 4;
/// Bytes of length prefix preceding a frame on a byte stream.
pub const LEN_PREFIX_LEN: usize = 4;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) over the concatenation of `parts`.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

/// A decoded frame, borrowing its payload from the wire buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined frame kind byte.
    pub kind: u8,
    /// Link-local sequence number.
    pub seq: u32,
    /// Application payload (empty for acks).
    pub payload: Bytes,
}

/// Why an in-memory frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed header.
    Truncated,
    /// CRC mismatch: the frame was corrupted in transit.
    BadCrc,
    /// Unknown `kind` byte (header corruption the CRC caught late, or
    /// a non-framed message on a reliable link).
    BadKind,
}

/// Wraps `payload` in a frame of `kind` with sequence number `seq`.
pub fn encode_frame(kind: u8, seq: u32, payload: &[u8]) -> Bytes {
    let seq_bytes = seq.to_le_bytes();
    let crc = crc32(&[&[kind], &seq_bytes, payload]);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&seq_bytes);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    Bytes::from(buf)
}

/// Parses and integrity-checks a frame off an in-memory buffer.
///
/// Accepts any `kind` byte the CRC vouches for; callers with a closed
/// kind set (the reliable link) validate it on top.
pub fn decode_frame(raw: &Bytes) -> Result<Frame, FrameError> {
    if raw.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let kind = raw[0];
    let seq = u32::from_le_bytes([raw[1], raw[2], raw[3], raw[4]]);
    let stored_crc = u32::from_le_bytes([raw[5], raw[6], raw[7], raw[8]]);
    let payload = raw.slice(HEADER_LEN..);
    let actual = crc32(&[&[kind], &seq.to_le_bytes(), &payload]);
    if actual != stored_crc {
        return Err(FrameError::BadCrc);
    }
    Ok(Frame { kind, seq, payload })
}

/// Why a frame failed to come off a byte stream.
#[derive(Debug)]
pub enum StreamError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-frame.
    Truncated,
    /// CRC mismatch: the frame was corrupted in transit.
    BadCrc,
    /// Length prefix larger than the caller's budget — a corrupt or
    /// hostile prefix must not drive allocation.
    Oversized {
        /// Claimed frame length.
        len: u32,
        /// The caller-supplied ceiling it exceeded.
        max: u32,
    },
    /// Length prefix smaller than the fixed header: prefix corruption.
    Undersized {
        /// Claimed frame length.
        len: u32,
    },
    /// Transport-level read failure.
    Io(io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Closed => write!(f, "stream closed"),
            StreamError::Truncated => write!(f, "stream ended mid-frame"),
            StreamError::BadCrc => write!(f, "frame CRC mismatch"),
            StreamError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds limit {max}")
            }
            StreamError::Undersized { len } => {
                write!(f, "frame length {len} below header size")
            }
            StreamError::Io(e) => write!(f, "stream read failed: {e}"),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Writes one length-prefixed frame to a byte stream.
pub fn write_frame(w: &mut impl Write, kind: u8, seq: u32, payload: &[u8]) -> io::Result<()> {
    let total = HEADER_LEN + payload.len();
    debug_assert!(total <= u32::MAX as usize, "frame payload too large");
    let seq_bytes = seq.to_le_bytes();
    let crc = crc32(&[&[kind], &seq_bytes, payload]);
    let mut head = [0u8; LEN_PREFIX_LEN + HEADER_LEN];
    head[..4].copy_from_slice(&(total as u32).to_le_bytes());
    head[4] = kind;
    head[5..9].copy_from_slice(&seq_bytes);
    head[9..13].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame off a byte stream.
///
/// `max_frame_len` bounds the claimed frame length (header plus
/// payload) before any allocation happens; a prefix beyond it fails
/// with [`StreamError::Oversized`]. Clean EOF before the first prefix
/// byte is [`StreamError::Closed`]; EOF anywhere later is
/// [`StreamError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_frame_len: u32) -> Result<Frame, StreamError> {
    let mut prefix = [0u8; LEN_PREFIX_LEN];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(StreamError::Closed),
            Ok(0) => return Err(StreamError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StreamError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len < HEADER_LEN as u32 {
        return Err(StreamError::Undersized { len });
    }
    if len > max_frame_len {
        return Err(StreamError::Oversized {
            len,
            max: max_frame_len,
        });
    }
    let mut buf = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut buf) {
        return match e.kind() {
            io::ErrorKind::UnexpectedEof => Err(StreamError::Truncated),
            _ => Err(StreamError::Io(e)),
        };
    }
    match decode_frame(&Bytes::from(buf)) {
        Ok(frame) => Ok(frame),
        Err(FrameError::BadCrc) => Err(StreamError::BadCrc),
        // `len >= HEADER_LEN` was checked above, so the buffer can
        // never be short; keep the arm for totality.
        Err(_) => Err(StreamError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use super::*;

    #[test]
    fn crc32_matches_ieee_check_value() {
        // The standard CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
    }

    #[test]
    fn crc32_over_parts_equals_concatenation() {
        assert_eq!(crc32(&[b"1234", b"56789"]), crc32(&[b"123456789"]));
        assert_eq!(crc32(&[b"", b"abc", b""]), crc32(&[b"abc"]));
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"subimage bytes".as_slice();
        let wire = encode_frame(1, 7, payload);
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let frame = decode_frame(&wire).unwrap();
        assert_eq!(frame.kind, 1);
        assert_eq!(frame.seq, 7);
        assert_eq!(&frame.payload[..], payload);
    }

    #[test]
    fn stream_frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x12, 3, b"over tcp").unwrap();
        write_frame(&mut wire, 0x13, 4, &[]).unwrap();
        let mut cursor = Cursor::new(wire);
        let a = read_frame(&mut cursor, 1024).unwrap();
        assert_eq!((a.kind, a.seq, &a.payload[..]), (0x12, 3, &b"over tcp"[..]));
        let b = read_frame(&mut cursor, 1024).unwrap();
        assert_eq!((b.kind, b.seq, b.payload.len()), (0x13, 4, 0));
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(StreamError::Closed)
        ));
    }

    #[test]
    fn stream_truncation_is_typed_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x12, 9, b"cut short").unwrap();
        for cut in 1..wire.len() {
            let mut cursor = Cursor::new(&wire[..cut]);
            let got = read_frame(&mut cursor, 1024);
            assert!(
                matches!(got, Err(StreamError::Truncated)),
                "cut at {cut}: expected Truncated, got {got:?}"
            );
        }
    }

    #[test]
    fn stream_oversized_prefix_rejected_before_allocation() {
        // A hostile length prefix claiming 4 GiB must fail by policy,
        // not by attempting the allocation.
        let wire = u32::MAX.to_le_bytes().to_vec();
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(StreamError::Oversized { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn stream_undersized_prefix_rejected() {
        let wire = 3u32.to_le_bytes().to_vec();
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(StreamError::Undersized { len: 3 })
        ));
    }

    #[test]
    fn stream_corruption_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x12, 5, b"payload").unwrap();
        // Flip a payload bit but leave the length prefix intact so the
        // frame still parses structurally.
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut cursor = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(StreamError::BadCrc)
        ));
    }
}
