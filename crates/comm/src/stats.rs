//! Per-rank traffic accounting.

use serde::{Deserialize, Serialize};

/// Message and byte counters for one rank, plus the modeled communication
/// time accumulated from the group's [`CostModel`](crate::CostModel).
///
/// `recv_bytes` is the paper's `m_i = Σ_k R_i^k`; the group-level maximum
/// over ranks is `M_max` (Section 4, used to validate Equation 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Messages sent by this rank.
    pub sent_messages: u64,
    /// Payload bytes sent by this rank.
    pub sent_bytes: u64,
    /// Messages received by this rank.
    pub recv_messages: u64,
    /// Payload bytes received by this rank (the paper's `m_i`).
    pub recv_bytes: u64,
    /// Modeled communication seconds: `Σ over received messages of
    /// (T_s + bytes · T_c)`.
    pub modeled_comm_seconds: f64,
    /// Data frames retransmitted by this rank (reliable mode).
    #[serde(default)]
    pub retransmits: u64,
    /// Wire bytes of those retransmitted frames (header + payload).
    #[serde(default)]
    pub retransmit_bytes: u64,
    /// Incoming frames this rank discarded for CRC mismatch.
    #[serde(default)]
    pub corruptions_detected: u64,
    /// Ack waits that expired before the ack arrived.
    #[serde(default)]
    pub ack_timeouts: u64,
    /// Wire bytes received beyond the application payload: frame
    /// headers, ack frames, and discarded duplicate/corrupt frames.
    #[serde(default)]
    pub overhead_bytes: u64,
    /// Peak resident pixel-buffer bytes this rank held at any point of
    /// the compositing schedule (scratch send/receive staging buffers).
    /// Reported by the compositing layer via
    /// [`note_pixel_buffer_peak`](TrafficStats::note_pixel_buffer_peak);
    /// zero for code paths that never stage pixels.
    #[serde(default)]
    pub peak_pixel_buffer_bytes: u64,
}

impl TrafficStats {
    /// Records a sent message.
    pub fn on_send(&mut self, bytes: usize) {
        self.sent_messages += 1;
        self.sent_bytes += bytes as u64;
    }

    /// Records a received message and its modeled delivery time.
    pub fn on_recv(&mut self, bytes: usize, modeled_seconds: f64) {
        self.recv_messages += 1;
        self.recv_bytes += bytes as u64;
        self.modeled_comm_seconds += modeled_seconds;
    }

    /// Raises the peak resident pixel-buffer watermark to at least
    /// `bytes`. Idempotent; the maximum over the rank's lifetime wins.
    pub fn note_pixel_buffer_peak(&mut self, bytes: u64) {
        self.peak_pixel_buffer_bytes = self.peak_pixel_buffer_bytes.max(bytes);
    }

    /// Merges another rank's counters into this one (for aggregates).
    pub fn merge(&mut self, other: &TrafficStats) {
        self.sent_messages += other.sent_messages;
        self.sent_bytes += other.sent_bytes;
        self.recv_messages += other.recv_messages;
        self.recv_bytes += other.recv_bytes;
        self.modeled_comm_seconds += other.modeled_comm_seconds;
        self.retransmits += other.retransmits;
        self.retransmit_bytes += other.retransmit_bytes;
        self.corruptions_detected += other.corruptions_detected;
        self.ack_timeouts += other.ack_timeouts;
        self.overhead_bytes += other.overhead_bytes;
        // A watermark, not a flow: the group-wide peak is the worst rank.
        self.peak_pixel_buffer_bytes = self
            .peak_pixel_buffer_bytes
            .max(other.peak_pixel_buffer_bytes);
    }
}

/// The maximum received byte count over a set of per-rank stats — the
/// paper's `M_max = MAX_i(m_i)`.
pub fn m_max(stats: &[TrafficStats]) -> u64 {
    stats.iter().map(|s| s.recv_bytes).max().unwrap_or(0)
}

/// The maximum modeled communication time over ranks, in seconds — the
/// group's `T_comm` under the "slowest rank" convention the paper reports.
pub fn max_comm_seconds(stats: &[TrafficStats]) -> f64 {
    stats
        .iter()
        .map(|s| s.modeled_comm_seconds)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::default();
        s.on_send(100);
        s.on_send(50);
        s.on_recv(30, 0.001);
        assert_eq!(s.sent_messages, 2);
        assert_eq!(s.sent_bytes, 150);
        assert_eq!(s.recv_messages, 1);
        assert_eq!(s.recv_bytes, 30);
        assert!((s.modeled_comm_seconds - 0.001).abs() < 1e-12);
    }

    #[test]
    fn m_max_over_ranks() {
        let mk = |b: u64| TrafficStats {
            recv_bytes: b,
            ..Default::default()
        };
        assert_eq!(m_max(&[mk(5), mk(9), mk(3)]), 9);
        assert_eq!(m_max(&[]), 0);
    }

    #[test]
    fn merge_adds() {
        let mut a = TrafficStats::default();
        a.on_send(10);
        let mut b = TrafficStats::default();
        b.on_recv(20, 0.5);
        a.merge(&b);
        assert_eq!(a.sent_bytes, 10);
        assert_eq!(a.recv_bytes, 20);
    }

    #[test]
    fn peak_pixel_buffer_is_a_watermark() {
        let mut a = TrafficStats::default();
        a.note_pixel_buffer_peak(4096);
        a.note_pixel_buffer_peak(1024); // lower: must not shrink the peak
        assert_eq!(a.peak_pixel_buffer_bytes, 4096);
        let b = TrafficStats {
            peak_pixel_buffer_bytes: 9000,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.peak_pixel_buffer_bytes, 9000, "merge takes the max");
    }

    #[test]
    fn merge_adds_reliability_counters() {
        let mut a = TrafficStats {
            retransmits: 1,
            retransmit_bytes: 100,
            corruptions_detected: 2,
            ack_timeouts: 3,
            overhead_bytes: 40,
            ..Default::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.retransmit_bytes, 200);
        assert_eq!(a.corruptions_detected, 4);
        assert_eq!(a.ack_timeouts, 6);
        assert_eq!(a.overhead_bytes, 80);
    }
}
