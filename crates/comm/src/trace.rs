//! Message tracing: a per-group event log of every send and receive,
//! for timeline analysis of the compositing schedules.
//!
//! Tracing is opt-in via [`run_group_traced`]; the collector is a
//! lock-protected append-only log (contention is negligible next to the
//! channel operations it brackets, and traced runs are diagnostics, not
//! measurements).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::endpoint::Endpoint;
use crate::group::{run_group, GroupRun};

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A message left this rank.
    Send,
    /// A message was delivered to this rank.
    Recv,
}

/// One traced communication event.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Nanoseconds since the group started.
    pub t_ns: u64,
    /// The rank that performed the operation.
    pub rank: usize,
    /// The other side of the message.
    pub peer: usize,
    /// Send or receive.
    pub kind: EventKind,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol tag.
    pub tag: u32,
}

/// The collected event log of one traced group run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// All events in collection order (approximately time order; exact
    /// order within a few µs is scheduler-dependent).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one rank, in its program order.
    pub fn for_rank(&self, rank: usize) -> Vec<TraceEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.rank == rank)
            .collect()
    }

    /// `(sends, receives)` counted per rank.
    pub fn message_counts(&self, p: usize) -> Vec<(usize, usize)> {
        let mut counts = vec![(0usize, 0usize); p];
        for e in &self.events {
            match e.kind {
                EventKind::Send => counts[e.rank].0 += 1,
                EventKind::Recv => counts[e.rank].1 += 1,
            }
        }
        counts
    }

    /// Renders the log as CSV (`t_ns,rank,peer,kind,bytes,tag`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns,rank,peer,kind,bytes,tag\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                e.t_ns,
                e.rank,
                e.peer,
                match e.kind {
                    EventKind::Send => "send",
                    EventKind::Recv => "recv",
                },
                e.bytes,
                e.tag
            ));
        }
        out
    }
}

/// A shared, thread-safe trace collector handed to every endpoint.
#[derive(Clone)]
pub struct Tracer {
    epoch: Instant,
    log: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Tracer {
    /// A fresh collector; `epoch` is "now".
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Records one event.
    pub fn record(&self, rank: usize, peer: usize, kind: EventKind, bytes: usize, tag: u32) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        self.log.lock().push(TraceEvent {
            t_ns,
            rank,
            peer,
            kind,
            bytes,
            tag,
        });
    }

    /// Extracts the finished trace.
    pub fn finish(self) -> Trace {
        Trace {
            events: Arc::try_unwrap(self.log)
                .map(Mutex::into_inner)
                .unwrap_or_default(),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Like [`run_group`], but records every send/receive into a [`Trace`]
/// returned alongside the results.
pub fn run_group_traced<R, F>(size: usize, cost: CostModel, f: F) -> (GroupRun<R>, Trace)
where
    R: Send,
    F: Fn(&mut Endpoint) -> R + Sync,
{
    let tracer = Tracer::new();
    let out = {
        let tracer = tracer.clone();
        run_group(size, cost, move |ep| {
            ep.set_tracer(tracer.clone());
            f(ep)
        })
    };
    (out, tracer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn trace_records_sends_and_recvs() {
        let (out, trace) = run_group_traced(4, CostModel::free(), |ep| {
            let peer = ep.rank() ^ 1;
            let got = ep
                .exchange(peer, 42, Bytes::from(vec![0u8; 10 + ep.rank()]))
                .unwrap();
            got.len()
        });
        assert_eq!(out.results.len(), 4);
        // 4 sends + 4 recvs.
        assert_eq!(trace.events().len(), 8);
        let counts = trace.message_counts(4);
        assert!(counts.iter().all(|&(s, r)| s == 1 && r == 1));
        // Payload sizes recorded faithfully.
        let sent: Vec<usize> = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Send)
            .map(|e| e.bytes)
            .collect();
        let mut sorted = sent.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11, 12, 13]);
        assert!(trace.events().iter().all(|e| e.tag == 42));
    }

    #[test]
    fn per_rank_events_are_in_program_order() {
        let (_, trace) = run_group_traced(2, CostModel::free(), |ep| {
            let peer = 1 - ep.rank();
            for tag in 0..3u32 {
                let _ = ep.exchange(peer, tag, Bytes::new()).unwrap();
            }
        });
        for rank in 0..2 {
            let evs = trace.for_rank(rank);
            assert_eq!(evs.len(), 6);
            // Tags of this rank's sends must appear in order 0,1,2.
            let send_tags: Vec<u32> = evs
                .iter()
                .filter(|e| e.kind == EventKind::Send)
                .map(|e| e.tag)
                .collect();
            assert_eq!(send_tags, vec![0, 1, 2]);
        }
    }

    #[test]
    fn csv_output_shape() {
        let (_, trace) = run_group_traced(2, CostModel::free(), |ep| {
            let _ = ep
                .exchange(1 - ep.rank(), 7, Bytes::from_static(b"abc"))
                .unwrap();
        });
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 events
        assert!(lines[0].starts_with("t_ns,"));
        assert!(lines[1].split(',').count() == 6);
    }

    #[test]
    fn untraced_runs_record_nothing() {
        // Plain run_group must not pay any tracing cost or panic.
        let out = crate::group::run_group(2, CostModel::free(), |ep| {
            ep.exchange(1 - ep.rank(), 0, Bytes::new()).unwrap().len()
        });
        assert_eq!(out.results, vec![0, 0]);
    }
}
