//! Deterministic, seeded fault injection for the message substrate.
//!
//! A [`FaultPlan`] decides, for every *physical* transmission on a
//! directed link, whether that transmission is delivered, dropped,
//! corrupted, duplicated or delayed. Decisions are **stateless**: each
//! is a pure hash of `(seed, src, dst, stream class, index)`, so two
//! runs with the same seed and the same per-link transmission sequence
//! inject exactly the same faults — no shared RNG state, no ordering
//! dependence between links.
//!
//! The plan can additionally *kill* one rank after a chosen number of
//! application-level send/receive operations, which models a processor
//! crash mid-schedule (the endpoint drops, so partners observe
//! `Disconnected` instead of hanging).

use std::str::FromStr;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// What happens to one physical transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Delivered unchanged (the overwhelmingly common case).
    Deliver,
    /// Lost in transit: the receiver never sees it.
    Drop,
    /// One payload byte is flipped (detectable by the CRC of the
    /// reliable framing layer; silent without it).
    Corrupt,
    /// Delivered twice back to back.
    Duplicate,
    /// Delivered after an extra latency of
    /// [`FaultConfig::delay_ms`] milliseconds.
    Delay,
}

/// Which transmission stream an index counts within. Keying faults by
/// stream keeps the decision deterministic even though data frames and
/// acks interleave on a link in timing-dependent order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamClass {
    /// Unframed application messages (reliability disabled); the index
    /// is the link's message count.
    Raw,
    /// Reliable data frames; the index packs `(seq, attempt)`.
    Data,
    /// Acknowledgement frames; the index packs `(seq, ack count)`.
    Ack,
}

/// Kill a rank once it has performed `after_ops` application-level
/// send/receive operations (`after_ops = 0` ⇒ it dies on its first one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// The rank to kill.
    pub rank: usize,
    /// Operations the rank completes before dying.
    pub after_ops: u64,
}

/// A single fault pinned to one exact transmission — used by tests that
/// need e.g. "drop exactly the first data frame from 0 to 1".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetedFault {
    /// Sending rank of the targeted link.
    pub src: usize,
    /// Receiving rank of the targeted link.
    pub dst: usize,
    /// Stream the index counts within.
    pub class: StreamClass,
    /// Transmission index within that stream (for [`StreamClass::Data`]
    /// and [`StreamClass::Ack`], `(seq << 16) | attempt`).
    pub index: u64,
    /// What to do to it.
    pub action: FaultAction,
}

/// Probabilities and parameters of a fault-injection campaign.
///
/// Parses from the CLI syntax
/// `drop=0.01,corrupt=0.001,dup=0.001,delay=0.01,delay_ms=2,seed=42,kill=3@17`
/// (every key optional).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-transmission drop probability.
    pub drop: f64,
    /// Per-transmission corruption probability.
    pub corrupt: f64,
    /// Per-transmission duplication probability.
    pub duplicate: f64,
    /// Per-transmission delay probability.
    pub delay: f64,
    /// Extra latency applied by a [`FaultAction::Delay`], milliseconds.
    pub delay_ms: u64,
    /// Seed for the stateless decision hash.
    pub seed: u64,
    /// Optional rank crash.
    pub kill: Option<KillSpec>,
    /// Optional single pinned fault (test API; not parsed from the CLI).
    pub target: Option<TargetedFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_ms: 1,
            seed: 0,
            kill: None,
            target: None,
        }
    }
}

impl FaultConfig {
    /// True when the plan can never act — the endpoint then skips the
    /// injection layer entirely.
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0
            && self.corrupt <= 0.0
            && self.duplicate <= 0.0
            && self.delay <= 0.0
            && self.kill.is_none()
            && self.target.is_none()
    }
}

impl FromStr for FaultConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let fprob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "drop" => cfg.drop = fprob(value)?,
                "corrupt" => cfg.corrupt = fprob(value)?,
                "dup" | "duplicate" => cfg.duplicate = fprob(value)?,
                "delay" => cfg.delay = fprob(value)?,
                "delay_ms" => {
                    cfg.delay_ms = value
                        .parse()
                        .map_err(|_| format!("bad delay_ms `{value}`"))?
                }
                "seed" => cfg.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?,
                "kill" => {
                    let (rank, ops) = value
                        .split_once('@')
                        .ok_or_else(|| format!("kill spec `{value}` is not RANK@OPS"))?;
                    cfg.kill = Some(KillSpec {
                        rank: rank
                            .parse()
                            .map_err(|_| format!("bad kill rank `{rank}`"))?,
                        after_ops: ops.parse().map_err(|_| format!("bad kill ops `{ops}`"))?,
                    });
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        if cfg.drop + cfg.corrupt + cfg.duplicate + cfg.delay > 1.0 {
            return Err("fault probabilities sum past 1.0".into());
        }
        Ok(cfg)
    }
}

/// The compiled, shareable form of a [`FaultConfig`]: a pure function
/// from transmission coordinates to a [`FaultAction`].
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

/// SplitMix64 finalizer — the stateless hash behind every decision.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stream_key(src: usize, dst: usize, class: StreamClass, index: u64) -> u64 {
    let class = match class {
        StreamClass::Raw => 0u64,
        StreamClass::Data => 1,
        StreamClass::Ack => 2,
    };
    splitmix64(
        (src as u64)
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((dst as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add(class << 56)
            .wrapping_add(index),
    )
}

impl FaultPlan {
    /// Compiles a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The op threshold at which `rank` dies, if this plan kills it.
    pub fn kill_threshold(&self, rank: usize) -> Option<u64> {
        self.cfg
            .kill
            .filter(|k| k.rank == rank)
            .map(|k| k.after_ops)
    }

    /// Decides the fate of one physical transmission. Deterministic in
    /// all arguments plus the seed.
    pub fn action(&self, src: usize, dst: usize, class: StreamClass, index: u64) -> FaultAction {
        if let Some(t) = self.cfg.target {
            if t.src == src && t.dst == dst && t.class == class && t.index == index {
                return t.action;
            }
        }
        let budget = self.cfg.drop + self.cfg.corrupt + self.cfg.duplicate + self.cfg.delay;
        if budget <= 0.0 {
            return FaultAction::Deliver;
        }
        let h = splitmix64(self.cfg.seed ^ stream_key(src, dst, class, index));
        let r = (h >> 11) as f64 / (1u64 << 53) as f64;
        if r < self.cfg.drop {
            FaultAction::Drop
        } else if r < self.cfg.drop + self.cfg.corrupt {
            FaultAction::Corrupt
        } else if r < self.cfg.drop + self.cfg.corrupt + self.cfg.duplicate {
            FaultAction::Duplicate
        } else if r < budget {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }

    /// Which byte of a corrupted transmission to flip (deterministic,
    /// independent of the action hash).
    pub fn corrupt_byte(
        &self,
        src: usize,
        dst: usize,
        class: StreamClass,
        index: u64,
        len: usize,
    ) -> usize {
        if len == 0 {
            return 0;
        }
        let h =
            splitmix64(self.cfg.seed ^ stream_key(src, dst, class, index) ^ 0xC0FF_EE00_DEAD_BEEF);
        (h % len as u64) as usize
    }

    /// The extra latency of a [`FaultAction::Delay`].
    pub fn delay(&self) -> Duration {
        Duration::from_millis(self.cfg.delay_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(FaultConfig {
            drop: 0.2,
            corrupt: 0.1,
            duplicate: 0.1,
            delay: 0.1,
            seed: 42,
            ..Default::default()
        });
        for index in 0..256u64 {
            let a = plan.action(1, 3, StreamClass::Data, index);
            let b = plan.action(1, 3, StreamClass::Data, index);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let mk = |seed| {
            FaultPlan::new(FaultConfig {
                drop: 0.5,
                seed,
                ..Default::default()
            })
        };
        let (a, b) = (mk(1), mk(2));
        let differs = (0..512u64)
            .any(|i| a.action(0, 1, StreamClass::Raw, i) != b.action(0, 1, StreamClass::Raw, i));
        assert!(differs, "seeds 1 and 2 produced identical fault traces");
    }

    #[test]
    fn probability_one_always_fires() {
        let plan = FaultPlan::new(FaultConfig {
            drop: 1.0,
            ..Default::default()
        });
        for i in 0..64u64 {
            assert_eq!(plan.action(0, 1, StreamClass::Data, i), FaultAction::Drop);
        }
    }

    #[test]
    fn zero_probability_always_delivers() {
        let plan = FaultPlan::new(FaultConfig::default());
        for i in 0..64u64 {
            assert_eq!(plan.action(2, 5, StreamClass::Ack, i), FaultAction::Deliver);
        }
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let plan = FaultPlan::new(FaultConfig {
            drop: 0.25,
            seed: 7,
            ..Default::default()
        });
        let drops = (0..10_000u64)
            .filter(|&i| plan.action(0, 1, StreamClass::Raw, i) == FaultAction::Drop)
            .count();
        assert!(
            (2_000..3_000).contains(&drops),
            "drop rate {drops}/10000 far from 0.25"
        );
    }

    #[test]
    fn targeted_fault_hits_exactly_once() {
        let plan = FaultPlan::new(FaultConfig {
            target: Some(TargetedFault {
                src: 0,
                dst: 1,
                class: StreamClass::Data,
                index: 3 << 16,
                action: FaultAction::Drop,
            }),
            ..Default::default()
        });
        let drops: Vec<u64> = (0..8u64)
            .map(|seq| seq << 16)
            .filter(|&i| plan.action(0, 1, StreamClass::Data, i) == FaultAction::Drop)
            .collect();
        assert_eq!(drops, vec![3 << 16]);
        // Other links and classes are untouched.
        assert_eq!(
            plan.action(1, 0, StreamClass::Data, 3 << 16),
            FaultAction::Deliver
        );
        assert_eq!(
            plan.action(0, 1, StreamClass::Ack, 3 << 16),
            FaultAction::Deliver
        );
    }

    #[test]
    fn kill_threshold_is_per_rank() {
        let plan = FaultPlan::new(FaultConfig {
            kill: Some(KillSpec {
                rank: 2,
                after_ops: 17,
            }),
            ..Default::default()
        });
        assert_eq!(plan.kill_threshold(2), Some(17));
        assert_eq!(plan.kill_threshold(0), None);
    }

    #[test]
    fn parses_cli_syntax() {
        let cfg: FaultConfig =
            "drop=0.01,corrupt=0.002,dup=0.003,delay=0.1,delay_ms=5,seed=42,kill=3@17"
                .parse()
                .unwrap();
        assert_eq!(cfg.drop, 0.01);
        assert_eq!(cfg.corrupt, 0.002);
        assert_eq!(cfg.duplicate, 0.003);
        assert_eq!(cfg.delay, 0.1);
        assert_eq!(cfg.delay_ms, 5);
        assert_eq!(cfg.seed, 42);
        assert_eq!(
            cfg.kill,
            Some(KillSpec {
                rank: 3,
                after_ops: 17
            })
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("drop".parse::<FaultConfig>().is_err());
        assert!("drop=2.0".parse::<FaultConfig>().is_err());
        assert!("frobnicate=1".parse::<FaultConfig>().is_err());
        assert!("kill=3".parse::<FaultConfig>().is_err());
        assert!("drop=0.9,corrupt=0.9".parse::<FaultConfig>().is_err());
    }

    #[test]
    fn empty_spec_is_noop() {
        let cfg: FaultConfig = "".parse().unwrap();
        assert!(cfg.is_noop());
        let cfg: FaultConfig = "seed=9".parse().unwrap();
        assert!(cfg.is_noop(), "a seed alone injects nothing");
        let cfg: FaultConfig = "drop=0.1".parse().unwrap();
        assert!(!cfg.is_noop());
    }
}
