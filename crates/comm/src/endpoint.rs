//! One rank's communication endpoint.
//!
//! The endpoint has two wire modes:
//!
//! * **Raw** (default): messages go straight onto the per-link channel
//!   with no framing — byte-identical behaviour and stats to builds
//!   that predate the reliability layer.
//! * **Reliable**: every message is wrapped in a sequence-numbered,
//!   CRC-protected frame (see [`crate::reliable`]) and delivered via a
//!   stop-and-wait ARQ: the sender retransmits on ack timeout with
//!   bounded exponential backoff until the retry budget is exhausted;
//!   the receiver CRC-checks, deduplicates by sequence number and acks
//!   every accepted or duplicate frame.
//!
//! Either mode can run under a [`FaultPlan`] that drops, corrupts,
//! duplicates or delays individual physical transmissions, and can kill
//! this rank outright after a configured number of operations.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::cost::CostModel;
use crate::fault::{FaultAction, FaultPlan, StreamClass};
use crate::reliable::{
    decode_frame, encode_frame, ReliabilityConfig, FRAME_ACK, FRAME_DATA, HEADER_LEN,
};
use crate::stats::TrafficStats;
use crate::trace::{EventKind, Tracer};
use crate::vclock::{LingerOutcome, SimNet, VRecvError};

/// Message tags, used to assert protocol agreement between matched
/// send/receive pairs (like MPI tags, but mismatches are hard errors).
pub type Tag = u32;

/// A message in flight: payload plus its tag.
#[derive(Clone, Debug)]
pub struct Message {
    /// Protocol tag supplied by the sender.
    pub tag: Tag,
    /// Payload bytes (cheaply cloneable).
    pub payload: Bytes,
}

/// Error from a receive operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the deadline — almost always a protocol
    /// deadlock in the compositing schedule.
    Timeout { from: usize, waited: Duration },
    /// A message arrived with an unexpected tag.
    TagMismatch {
        from: usize,
        expected: Tag,
        got: Tag,
    },
    /// The peer's endpoint was dropped (its rank function returned or
    /// panicked before sending).
    Disconnected { from: usize },
    /// This rank itself was killed by fault injection; the operation was
    /// not performed.
    Killed { rank: usize },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { from, waited } => {
                write!(
                    f,
                    "timed out after {waited:?} waiting for a message from rank {from}"
                )
            }
            RecvError::TagMismatch {
                from,
                expected,
                got,
            } => {
                write!(
                    f,
                    "tag mismatch from rank {from}: expected {expected}, got {got}"
                )
            }
            RecvError::Disconnected { from } => {
                write!(f, "rank {from} disconnected before sending")
            }
            RecvError::Killed { rank } => {
                write!(f, "rank {rank} was killed by fault injection")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// Error from a send operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError {
    /// The destination rank.
    pub to: usize,
    /// Why the send failed.
    pub kind: SendErrorKind,
}

/// Why a send failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendErrorKind {
    /// The destination's endpoint was dropped (it exited or died).
    Disconnected,
    /// Reliable delivery gave up after exhausting its retransmissions
    /// without an acknowledgement.
    RetryBudgetExhausted {
        /// Total transmissions attempted (initial send + retries).
        attempts: u32,
    },
    /// This rank itself was killed by fault injection; nothing was sent.
    Killed,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            SendErrorKind::Disconnected => {
                write!(f, "rank {} mailbox closed (peer exited early)", self.to)
            }
            SendErrorKind::RetryBudgetExhausted { attempts } => write!(
                f,
                "no ack from rank {} after {attempts} transmissions (retry budget exhausted)",
                self.to
            ),
            SendErrorKind::Killed => {
                write!(f, "send to rank {} aborted: this rank was killed", self.to)
            }
        }
    }
}

impl std::error::Error for SendError {}

/// Error from a combined send+receive operation ([`Endpoint::exchange`],
/// [`Endpoint::gather`], collectives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The sending half failed.
    Send(SendError),
    /// The receiving half failed.
    Recv(RecvError),
}

impl From<SendError> for CommError {
    fn from(e: SendError) -> Self {
        CommError::Send(e)
    }
}

impl From<RecvError> for CommError {
    fn from(e: RecvError) -> Self {
        CommError::Recv(e)
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Send(e) => e.fmt(f),
            CommError::Recv(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CommError {}

impl CommError {
    /// True when the error means the *peer* is gone (dead or
    /// unreachable) — the survivable case a degraded compositing run
    /// routes around.
    pub fn is_peer_dead(&self) -> bool {
        matches!(
            self,
            CommError::Send(SendError {
                kind: SendErrorKind::Disconnected | SendErrorKind::RetryBudgetExhausted { .. },
                ..
            }) | CommError::Recv(RecvError::Disconnected { .. })
        )
    }

    /// True when *this* rank was killed by fault injection and must stop
    /// participating.
    pub fn is_self_killed(&self) -> bool {
        matches!(
            self,
            CommError::Send(SendError {
                kind: SendErrorKind::Killed,
                ..
            }) | CommError::Recv(RecvError::Killed { .. })
        )
    }

    /// The peer rank involved, when the error names one.
    pub fn peer(&self) -> Option<usize> {
        match self {
            CommError::Send(e) => Some(e.to),
            CommError::Recv(RecvError::Timeout { from, .. })
            | CommError::Recv(RecvError::TagMismatch { from, .. })
            | CommError::Recv(RecvError::Disconnected { from }) => Some(*from),
            CommError::Recv(RecvError::Killed { .. }) => None,
        }
    }
}

/// Default deadline a blocking receive waits before declaring a deadlock.
pub const DEFAULT_RECV_DEADLINE: Duration = Duration::from_secs(60);

/// How long the reliable pump sleeps between polls of the incoming links.
const PUMP_SLEEP: Duration = Duration::from_micros(50);

/// Per-peer link state for the reliable layer and fault keying.
#[derive(Debug, Default)]
struct LinkState {
    // --- send side ---
    /// Next data sequence number for frames to this peer.
    next_seq: u32,
    /// Highest data seq this peer has acknowledged.
    acked: Option<u32>,
    /// Raw-mode transmission counter (fault keying).
    raw_index: u64,
    // --- receive side ---
    /// Next data seq expected from this peer.
    expected_seq: u32,
    /// Reliable messages accepted from this peer, awaiting `recv`.
    pending: VecDeque<Message>,
    /// The peer's channel reported disconnected (no more frames ever).
    peer_closed: bool,
    /// Last data seq this rank acked to this peer, with how many acks
    /// it has sent for it (fault keying for re-acks of duplicates).
    last_ack: Option<(u32, u64)>,
}

/// What ended one retry window of a reliable send.
enum AckWait {
    /// The peer acknowledged the frame.
    Acked,
    /// The peer is gone and drained; the ack can never arrive.
    PeerClosed,
    /// The retry window elapsed silently; retransmit.
    TimedOut,
}

/// Per-endpoint wiring handed over by the group runner.
pub(crate) struct EndpointConfig {
    pub cost: CostModel,
    pub recv_deadline: Duration,
    pub reliability: ReliabilityConfig,
    pub faults: Option<FaultPlan>,
    pub kill_at: Option<u64>,
    /// Present when the group runs under deterministic virtual time; all
    /// blocking and all timeouts then go through the [`SimNet`].
    pub sim: Option<Arc<SimNet>>,
}

/// A rank's private endpoint into the group.
///
/// Sends are buffered (never block in raw mode); receives are selective
/// by source rank, which matches how every compositing schedule here
/// names its communication partner explicitly.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `to[dst]` delivers into dst's mailbox slot for this rank.
    to: Vec<Sender<Message>>,
    /// `from[src]` receives messages sent by `src` to this rank.
    from: Vec<Receiver<Message>>,
    barrier: Arc<std::sync::Barrier>,
    cost: CostModel,
    stats: TrafficStats,
    tracer: Option<Tracer>,
    recv_deadline: Duration,
    reliability: ReliabilityConfig,
    faults: Option<FaultPlan>,
    links: Vec<LinkState>,
    /// Application-level operations (sends + receives) completed.
    ops: u64,
    /// Op count at which this rank dies, if the fault plan kills it.
    kill_at: Option<u64>,
    /// Set once the kill threshold is crossed; every further op fails.
    dead: bool,
    /// Virtual-time network, when the group runs deterministically.
    sim: Option<Arc<SimNet>>,
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Under virtual time the scheduler must learn this rank is gone,
        // exactly when channel senders would drop in real-time mode.
        if let Some(sim) = self.sim.take() {
            sim.close_rank(self.rank);
        }
    }
}

impl Endpoint {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        to: Vec<Sender<Message>>,
        from: Vec<Receiver<Message>>,
        barrier: Arc<std::sync::Barrier>,
        config: EndpointConfig,
    ) -> Self {
        Endpoint {
            rank,
            size,
            to,
            from,
            barrier,
            cost: config.cost,
            stats: TrafficStats::default(),
            tracer: None,
            recv_deadline: config.recv_deadline,
            reliability: config.reliability,
            faults: config.faults,
            links: (0..size).map(|_| LinkState::default()).collect(),
            ops: 0,
            kill_at: config.kill_at,
            dead: false,
            sim: config.sim,
        }
    }

    /// Attaches a trace collector (see [`crate::trace::run_group_traced`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group (the paper's `P`).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The group's communication cost model.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Traffic recorded so far by this rank.
    #[inline]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// True once fault injection has killed this rank: every further
    /// send/receive fails with a `Killed` error.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Consumes the endpoint, yielding its final traffic stats.
    pub fn into_stats(self) -> TrafficStats {
        self.stats
    }

    /// Records the peak resident pixel-buffer bytes the compositing
    /// layer held on this rank (scratch staging buffers). A watermark:
    /// the lifetime maximum is what [`Endpoint::stats`] reports.
    #[inline]
    pub fn note_pixel_buffer_peak(&mut self, bytes: u64) {
        self.stats.note_pixel_buffer_peak(bytes);
    }

    /// Keeps the transport responsive after this rank's work is done:
    /// answers retransmissions (re-acking duplicates) until `done`
    /// reports the whole group finished.
    ///
    /// Without this, a peer whose ack was lost in transit would
    /// retransmit into a closed channel and wrongly conclude this rank
    /// died — a healthy transport's protocol state outlives the
    /// application's last receive. No-op in raw (unreliable) mode.
    pub fn linger_until(&mut self, done: impl Fn() -> bool) {
        if !self.reliability.enabled {
            return;
        }
        if let Some(sim) = self.sim.clone() {
            loop {
                self.pump();
                if done() {
                    return;
                }
                if sim.linger(self.rank) == LingerOutcome::GroupDone {
                    // Re-ack anything that raced in with completion.
                    self.pump();
                    return;
                }
            }
        }
        while !done() {
            self.pump();
            std::thread::sleep(PUMP_SLEEP);
        }
    }

    /// Accounts one application-level operation against the kill
    /// threshold. Returns false when the rank is (now) dead.
    fn consume_op(&mut self) -> bool {
        if self.dead {
            return false;
        }
        if let Some(kill_at) = self.kill_at {
            if self.ops >= kill_at {
                self.dead = true;
                return false;
            }
        }
        self.ops += 1;
        true
    }

    /// Pushes one physical transmission onto the wire, applying the
    /// fault plan. `Err` means the destination channel is closed.
    fn transmit(
        &mut self,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        class: StreamClass,
        index: u64,
    ) -> Result<(), ()> {
        self.transmit_delayed(dst, tag, payload, class, index, 0.0)
    }

    /// [`Endpoint::transmit`] carrying `extra_secs` of additional virtual
    /// latency (ignored on the real-time transport, composed with any
    /// fault delay under the virtual clock).
    fn transmit_delayed(
        &mut self,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        class: StreamClass,
        index: u64,
        extra_secs: f64,
    ) -> Result<(), ()> {
        let Some(plan) = self.faults else {
            return self.push_delayed(dst, tag, payload, extra_secs);
        };
        match plan.action(self.rank, dst, class, index) {
            FaultAction::Deliver => self.push_delayed(dst, tag, payload, extra_secs),
            FaultAction::Drop => Ok(()), // lost in transit
            FaultAction::Corrupt => {
                let mut bytes = payload.to_vec();
                if !bytes.is_empty() {
                    let i = plan.corrupt_byte(self.rank, dst, class, index, bytes.len());
                    bytes[i] ^= 0x01;
                }
                self.push_delayed(dst, tag, Bytes::from(bytes), extra_secs)
            }
            FaultAction::Duplicate => {
                self.push_delayed(dst, tag, payload.clone(), extra_secs)?;
                self.push_delayed(dst, tag, payload, extra_secs)
            }
            FaultAction::Delay => {
                if self.sim.is_some() {
                    // Virtual time: the delay rides on the message as
                    // extra latency instead of stalling the sender.
                    self.push_delayed(dst, tag, payload, extra_secs + plan.delay().as_secs_f64())
                } else {
                    std::thread::sleep(plan.delay());
                    self.push_delayed(dst, tag, payload, extra_secs)
                }
            }
        }
    }

    fn push_delayed(
        &mut self,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        extra_secs: f64,
    ) -> Result<(), ()> {
        let msg = Message { tag, payload };
        match &self.sim {
            Some(sim) => sim.send(self.rank, dst, msg, extra_secs),
            None => self.to[dst].send(msg).map_err(|_| ()),
        }
    }

    /// Sends `payload` to `dst` with `tag`.
    ///
    /// In raw mode this never blocks; in reliable mode it blocks until
    /// the frame is acknowledged (retransmitting on timeout) and fails
    /// with [`SendErrorKind::RetryBudgetExhausted`] when the peer stays
    /// silent through the whole retry budget.
    pub fn send(&mut self, dst: usize, tag: Tag, payload: Bytes) -> Result<(), SendError> {
        assert!(
            dst < self.size,
            "send to rank {dst} out of range (size {})",
            self.size
        );
        if !self.consume_op() {
            return Err(SendError {
                to: dst,
                kind: SendErrorKind::Killed,
            });
        }
        if let Some(t) = &self.tracer {
            t.record(self.rank, dst, EventKind::Send, payload.len(), tag);
        }
        self.stats.on_send(payload.len());
        if self.reliability.enabled {
            self.send_reliable(dst, tag, payload)
        } else {
            let index = self.links[dst].raw_index;
            self.links[dst].raw_index += 1;
            self.transmit(dst, tag, payload, StreamClass::Raw, index)
                .map_err(|()| SendError {
                    to: dst,
                    kind: SendErrorKind::Disconnected,
                })
        }
    }

    /// Like [`Endpoint::send`], but the message additionally carries
    /// `extra_secs` of *virtual* latency under the deterministic clock —
    /// modeling work (e.g. rendering the tile being shipped) that
    /// completes at a known simulated instant, so streamed delivery
    /// order is a pure function of the schedule seed and the modeled
    /// costs. On the real-time transport the extra delay is ignored
    /// (real completion times come from real work), and in reliable mode
    /// it is dropped too: ARQ timing is governed by the retry policy.
    pub fn send_timed(
        &mut self,
        dst: usize,
        tag: Tag,
        payload: Bytes,
        extra_secs: f64,
    ) -> Result<(), SendError> {
        if self.reliability.enabled || extra_secs <= 0.0 {
            return self.send(dst, tag, payload);
        }
        assert!(
            dst < self.size,
            "send to rank {dst} out of range (size {})",
            self.size
        );
        if !self.consume_op() {
            return Err(SendError {
                to: dst,
                kind: SendErrorKind::Killed,
            });
        }
        if let Some(t) = &self.tracer {
            t.record(self.rank, dst, EventKind::Send, payload.len(), tag);
        }
        self.stats.on_send(payload.len());
        let index = self.links[dst].raw_index;
        self.links[dst].raw_index += 1;
        self.transmit_delayed(dst, tag, payload, StreamClass::Raw, index, extra_secs)
            .map_err(|()| SendError {
                to: dst,
                kind: SendErrorKind::Disconnected,
            })
    }

    /// Stop-and-wait reliable send: frame, transmit, await ack, retry
    /// with exponential backoff.
    fn send_reliable(&mut self, dst: usize, tag: Tag, payload: Bytes) -> Result<(), SendError> {
        let seq = self.links[dst].next_seq;
        self.links[dst].next_seq = seq.wrapping_add(1);
        let frame = encode_frame(FRAME_DATA, seq, &payload);
        let mut attempt: u32 = 0;
        loop {
            if attempt > 0 {
                self.stats.retransmits += 1;
                self.stats.retransmit_bytes += frame.len() as u64;
            }
            let key = ((seq as u64) << 16) | (attempt as u64 & 0xFFFF);
            if self
                .transmit(dst, tag, frame.clone(), StreamClass::Data, key)
                .is_err()
            {
                return Err(SendError {
                    to: dst,
                    kind: SendErrorKind::Disconnected,
                });
            }
            match self.await_ack(dst, seq, attempt) {
                AckWait::Acked => return Ok(()),
                AckWait::PeerClosed => {
                    // The channel is drained and the peer is gone: the
                    // ack can never arrive.
                    return Err(SendError {
                        to: dst,
                        kind: SendErrorKind::Disconnected,
                    });
                }
                AckWait::TimedOut => {}
            }
            self.stats.ack_timeouts += 1;
            attempt += 1;
            if attempt > self.reliability.max_retries {
                return Err(SendError {
                    to: dst,
                    kind: SendErrorKind::RetryBudgetExhausted { attempts: attempt },
                });
            }
        }
    }

    /// Waits for an ack of `seq` from `dst` through one retry window,
    /// pumping the links the whole time.
    fn await_ack(&mut self, dst: usize, seq: u32, attempt: u32) -> AckWait {
        if let Some(sim) = self.sim.clone() {
            let deadline = sim.now(self.rank) + self.reliability.retry_delay(attempt).as_secs_f64();
            loop {
                self.pump();
                if self.links[dst].acked.is_some_and(|a| a >= seq) {
                    return AckWait::Acked;
                }
                if self.links[dst].peer_closed {
                    return AckWait::PeerClosed;
                }
                if sim.now(self.rank) >= deadline {
                    return AckWait::TimedOut;
                }
                let _ = sim.wait_any(self.rank, Some(dst), Some(deadline));
            }
        }
        let deadline = Instant::now() + self.reliability.retry_delay(attempt);
        loop {
            self.pump();
            if self.links[dst].acked.is_some_and(|a| a >= seq) {
                return AckWait::Acked;
            }
            if self.links[dst].peer_closed {
                return AckWait::PeerClosed;
            }
            if Instant::now() >= deadline {
                return AckWait::TimedOut;
            }
            std::thread::sleep(PUMP_SLEEP);
        }
    }

    /// Drains every incoming link without blocking, processing frames:
    /// CRC check, dedup, ack, and buffering of accepted messages.
    fn pump(&mut self) {
        if let Some(sim) = self.sim.clone() {
            let (msgs, dead) = sim.drain(self.rank);
            for (src, msg) in msgs {
                self.process_frame(src, msg);
            }
            for (src, is_dead) in dead.into_iter().enumerate() {
                if is_dead {
                    self.links[src].peer_closed = true;
                }
            }
            return;
        }
        for src in 0..self.size {
            loop {
                match self.from[src].try_recv() {
                    Ok(msg) => self.process_frame(src, msg),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.links[src].peer_closed = true;
                        break;
                    }
                }
            }
        }
    }

    /// Handles one physical frame off the wire (reliable mode only).
    fn process_frame(&mut self, src: usize, msg: Message) {
        let raw_len = msg.payload.len();
        // Every physical frame costs modeled wire time at the receiver.
        self.stats.modeled_comm_seconds += self.cost.message_seconds(raw_len);
        match decode_frame(&msg.payload) {
            Err(_) => {
                // Corrupted in transit; drop it and let the sender's ack
                // timeout drive a retransmission.
                self.stats.corruptions_detected += 1;
                self.stats.overhead_bytes += raw_len as u64;
            }
            Ok(frame) if frame.kind == FRAME_ACK => {
                self.stats.overhead_bytes += raw_len as u64;
                let link = &mut self.links[src];
                link.acked = Some(link.acked.map_or(frame.seq, |a| a.max(frame.seq)));
            }
            Ok(frame) => {
                let expected = self.links[src].expected_seq;
                if frame.seq == expected {
                    self.links[src].expected_seq = expected.wrapping_add(1);
                    self.stats.overhead_bytes += HEADER_LEN as u64;
                    self.send_ack(src, msg.tag, frame.seq);
                    self.links[src].pending.push_back(Message {
                        tag: msg.tag,
                        payload: frame.payload,
                    });
                } else {
                    // A duplicate (retransmission of something already
                    // accepted): discard, but re-ack so the sender can
                    // make progress if the first ack was lost.
                    self.stats.overhead_bytes += raw_len as u64;
                    if frame.seq < expected {
                        self.send_ack(src, msg.tag, frame.seq);
                    }
                }
            }
        }
    }

    /// Acks `seq` back to `src`. Failures are ignored: a peer that
    /// already exited no longer needs the ack.
    fn send_ack(&mut self, src: usize, tag: Tag, seq: u32) {
        let attempt = {
            let link = &mut self.links[src];
            let n = match link.last_ack {
                Some((s, n)) if s == seq => n + 1,
                _ => 0,
            };
            link.last_ack = Some((seq, n));
            n
        };
        let frame = encode_frame(FRAME_ACK, seq, &[]);
        let key = ((seq as u64) << 16) | (attempt & 0xFFFF);
        let _ = self.transmit(src, tag, frame, StreamClass::Ack, key);
    }

    /// Receives the next message from `src`, requiring `tag`.
    ///
    /// Blocks up to the group's receive deadline, then returns
    /// [`RecvError::Timeout`] so schedule deadlocks surface as test
    /// failures instead of hangs.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Result<Bytes, RecvError> {
        assert!(
            src < self.size,
            "recv from rank {src} out of range (size {})",
            self.size
        );
        if !self.consume_op() {
            return Err(RecvError::Killed { rank: self.rank });
        }
        if self.reliability.enabled {
            self.recv_reliable(src, tag)
        } else if let Some(sim) = self.sim.clone() {
            // A preceding `recv_any` may have drained this source's
            // frames into the link buffer; consume those first so no
            // message is lost between the two receive styles.
            if let Some(msg) = self.links[src].pending.pop_front() {
                return self.deliver(src, tag, msg);
            }
            let deadline = sim.now(self.rank) + self.recv_deadline.as_secs_f64();
            match sim.recv_from(self.rank, src, deadline) {
                Ok(msg) => self.deliver(src, tag, msg),
                Err(VRecvError::Timeout) => Err(RecvError::Timeout {
                    from: src,
                    waited: self.recv_deadline,
                }),
                Err(VRecvError::Disconnected) => Err(RecvError::Disconnected { from: src }),
            }
        } else {
            match self.from[src].recv_timeout(self.recv_deadline) {
                Ok(msg) => self.deliver(src, tag, msg),
                Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout {
                    from: src,
                    waited: self.recv_deadline,
                }),
                Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected { from: src }),
            }
        }
    }

    /// Reliable-mode receive: pops this link's pending queue, pumping
    /// all links while waiting so in-flight acks and frames for *other*
    /// conversations keep moving (this is what makes ring and exchange
    /// schedules deadlock-free under ARQ).
    fn recv_reliable(&mut self, src: usize, tag: Tag) -> Result<Bytes, RecvError> {
        if let Some(sim) = self.sim.clone() {
            let deadline = sim.now(self.rank) + self.recv_deadline.as_secs_f64();
            loop {
                if let Some(msg) = self.links[src].pending.pop_front() {
                    return self.deliver(src, tag, msg);
                }
                self.pump();
                if !self.links[src].pending.is_empty() {
                    continue;
                }
                if self.links[src].peer_closed {
                    return Err(RecvError::Disconnected { from: src });
                }
                if sim.now(self.rank) >= deadline {
                    return Err(RecvError::Timeout {
                        from: src,
                        waited: self.recv_deadline,
                    });
                }
                let _ = sim.wait_any(self.rank, Some(src), Some(deadline));
            }
        }
        let deadline = Instant::now() + self.recv_deadline;
        loop {
            if let Some(msg) = self.links[src].pending.pop_front() {
                return self.deliver(src, tag, msg);
            }
            self.pump();
            if !self.links[src].pending.is_empty() {
                continue;
            }
            if self.links[src].peer_closed {
                return Err(RecvError::Disconnected { from: src });
            }
            if Instant::now() >= deadline {
                return Err(RecvError::Timeout {
                    from: src,
                    waited: self.recv_deadline,
                });
            }
            std::thread::sleep(PUMP_SLEEP);
        }
    }

    /// Receives the next message carrying `tag` from *any* rank whose
    /// `await_from` slot is true — the streamed-compositing primitive,
    /// where an owner consumes tile contributions in arrival order
    /// instead of naming one partner.
    ///
    /// Returns the source rank alongside the payload. When an awaited
    /// peer disconnects (and its frames are drained), the error names
    /// that peer via [`RecvError::Disconnected`] so the caller can mark
    /// it dead, clear its slot and keep receiving from the others —
    /// a dead producer never hangs the receiver. Messages arriving from
    /// non-awaited sources are buffered and served to later receives.
    pub fn recv_any(&mut self, await_from: &[bool], tag: Tag) -> Result<(usize, Bytes), RecvError> {
        assert_eq!(
            await_from.len(),
            self.size,
            "await_from must have one slot per rank"
        );
        assert!(
            await_from.iter().any(|&w| w),
            "recv_any needs at least one awaited source"
        );
        if !self.consume_op() {
            return Err(RecvError::Killed { rank: self.rank });
        }
        if self.reliability.enabled {
            self.recv_any_reliable(await_from, tag)
        } else if self.sim.is_some() {
            self.recv_any_sim(await_from, tag)
        } else {
            self.recv_any_raw(await_from, tag)
        }
    }

    /// The first awaited source with a buffered message, lowest rank
    /// first (arrival order within a source is preserved by the queue).
    fn pop_any_pending(&mut self, await_from: &[bool]) -> Option<(usize, Message)> {
        for (src, &wanted) in await_from.iter().enumerate().take(self.size) {
            if wanted {
                if let Some(msg) = self.links[src].pending.pop_front() {
                    return Some((src, msg));
                }
            }
        }
        None
    }

    /// True when any awaited source has a buffered message.
    fn has_any_pending(&self, await_from: &[bool]) -> bool {
        (0..self.size).any(|src| await_from[src] && !self.links[src].pending.is_empty())
    }

    /// The first awaited source that is closed with nothing buffered.
    fn closed_awaited(&self, await_from: &[bool]) -> Option<usize> {
        (0..self.size).find(|&src| {
            await_from[src] && self.links[src].peer_closed && self.links[src].pending.is_empty()
        })
    }

    /// Raw real-time any-source receive: poll the awaited channels.
    fn recv_any_raw(&mut self, await_from: &[bool], tag: Tag) -> Result<(usize, Bytes), RecvError> {
        let deadline = Instant::now() + self.recv_deadline;
        loop {
            let mut closed = None;
            for (src, &wanted) in await_from.iter().enumerate().take(self.size) {
                if !wanted {
                    continue;
                }
                match self.from[src].try_recv() {
                    Ok(msg) => return self.deliver(src, tag, msg).map(|b| (src, b)),
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => closed = closed.or(Some(src)),
                }
            }
            // A message anywhere beats reporting a disconnect; only when
            // the full sweep finds nothing does the dead peer surface.
            if let Some(src) = closed {
                return Err(RecvError::Disconnected { from: src });
            }
            if Instant::now() >= deadline {
                let from = await_from.iter().position(|&w| w).unwrap_or(0);
                return Err(RecvError::Timeout {
                    from,
                    waited: self.recv_deadline,
                });
            }
            std::thread::sleep(PUMP_SLEEP);
        }
    }

    /// Raw virtual-time any-source receive: drain the simulated inboxes
    /// into the per-link buffers, then park on any-frame arrival.
    fn recv_any_sim(&mut self, await_from: &[bool], tag: Tag) -> Result<(usize, Bytes), RecvError> {
        let sim = self.sim.clone().expect("recv_any_sim requires a SimNet");
        let deadline = sim.now(self.rank) + self.recv_deadline.as_secs_f64();
        loop {
            if let Some((src, msg)) = self.pop_any_pending(await_from) {
                return self.deliver(src, tag, msg).map(|b| (src, b));
            }
            let (msgs, dead) = sim.drain(self.rank);
            let progressed = !msgs.is_empty();
            for (src, msg) in msgs {
                self.links[src].pending.push_back(msg);
            }
            for (src, is_dead) in dead.into_iter().enumerate() {
                if is_dead {
                    self.links[src].peer_closed = true;
                }
            }
            if progressed {
                continue;
            }
            if let Some(src) = self.closed_awaited(await_from) {
                return Err(RecvError::Disconnected { from: src });
            }
            if sim.now(self.rank) >= deadline {
                let from = await_from.iter().position(|&w| w).unwrap_or(0);
                return Err(RecvError::Timeout {
                    from,
                    waited: self.recv_deadline,
                });
            }
            let _ = sim.wait_any(self.rank, None, Some(deadline));
        }
    }

    /// Reliable any-source receive: pump frames (acking as usual) and
    /// pop the first awaited pending message.
    fn recv_any_reliable(
        &mut self,
        await_from: &[bool],
        tag: Tag,
    ) -> Result<(usize, Bytes), RecvError> {
        if let Some(sim) = self.sim.clone() {
            let deadline = sim.now(self.rank) + self.recv_deadline.as_secs_f64();
            loop {
                if let Some((src, msg)) = self.pop_any_pending(await_from) {
                    return self.deliver(src, tag, msg).map(|b| (src, b));
                }
                self.pump();
                if self.has_any_pending(await_from) {
                    continue;
                }
                if let Some(src) = self.closed_awaited(await_from) {
                    return Err(RecvError::Disconnected { from: src });
                }
                if sim.now(self.rank) >= deadline {
                    let from = await_from.iter().position(|&w| w).unwrap_or(0);
                    return Err(RecvError::Timeout {
                        from,
                        waited: self.recv_deadline,
                    });
                }
                let _ = sim.wait_any(self.rank, None, Some(deadline));
            }
        }
        let deadline = Instant::now() + self.recv_deadline;
        loop {
            if let Some((src, msg)) = self.pop_any_pending(await_from) {
                return self.deliver(src, tag, msg).map(|b| (src, b));
            }
            self.pump();
            if self.has_any_pending(await_from) {
                continue;
            }
            if let Some(src) = self.closed_awaited(await_from) {
                return Err(RecvError::Disconnected { from: src });
            }
            if Instant::now() >= deadline {
                let from = await_from.iter().position(|&w| w).unwrap_or(0);
                return Err(RecvError::Timeout {
                    from,
                    waited: self.recv_deadline,
                });
            }
            std::thread::sleep(PUMP_SLEEP);
        }
    }

    /// Tag-checks and accounts one application message.
    fn deliver(&mut self, src: usize, tag: Tag, msg: Message) -> Result<Bytes, RecvError> {
        if msg.tag != tag {
            return Err(RecvError::TagMismatch {
                from: src,
                expected: tag,
                got: msg.tag,
            });
        }
        if let Some(tr) = &self.tracer {
            tr.record(self.rank, src, EventKind::Recv, msg.payload.len(), tag);
        }
        // In reliable mode the wire time was already charged per physical
        // frame by `process_frame`; charge it here only for raw delivery.
        let modeled = if self.reliability.enabled {
            0.0
        } else {
            self.cost.message_seconds(msg.payload.len())
        };
        self.stats.on_recv(msg.payload.len(), modeled);
        Ok(msg.payload)
    }

    /// Full-duplex exchange with `peer`: buffered send, then blocking
    /// receive. Deadlock-free for any pairing where both sides call it.
    ///
    /// This is the binary-swap primitive: "each PE sends the half subimage
    /// it keeps to PE'; each PE receives the half subimage from PE'".
    pub fn exchange(&mut self, peer: usize, tag: Tag, payload: Bytes) -> Result<Bytes, CommError> {
        self.send(peer, tag, payload)?;
        Ok(self.recv(peer, tag)?)
    }

    /// Blocks until every rank in the group has reached the barrier.
    pub fn barrier(&self) {
        match &self.sim {
            Some(sim) => sim.barrier(self.rank),
            None => {
                self.barrier.wait();
            }
        }
    }

    /// Gathers every rank's payload at `root`; returns `Some(payloads)`
    /// (indexed by rank) at the root, `None` elsewhere. Any failure is a
    /// hard error — use [`Endpoint::gather_tolerant`] to survive dead
    /// contributors.
    pub fn gather(
        &mut self,
        root: usize,
        tag: Tag,
        payload: Bytes,
    ) -> Result<Option<Vec<Bytes>>, CommError> {
        if self.rank == root {
            let mut all: Vec<Bytes> = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == self.rank {
                    all.push(payload.clone());
                } else {
                    all.push(self.recv(src, tag)?);
                }
            }
            Ok(Some(all))
        } else {
            self.send(root, tag, payload)?;
            Ok(None)
        }
    }

    /// Like [`Endpoint::gather`], but a contributor that died or
    /// disconnected yields `None` in its slot instead of failing the
    /// whole gather. Only `Killed` (this rank is dead) and protocol
    /// errors (timeout, tag mismatch) remain hard errors.
    pub fn gather_tolerant(
        &mut self,
        root: usize,
        tag: Tag,
        payload: Bytes,
    ) -> Result<Option<Vec<Option<Bytes>>>, CommError> {
        if self.rank == root {
            let mut all: Vec<Option<Bytes>> = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == self.rank {
                    all.push(Some(payload.clone()));
                } else {
                    match self.recv(src, tag) {
                        Ok(bytes) => all.push(Some(bytes)),
                        Err(RecvError::Disconnected { .. }) => all.push(None),
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            Ok(Some(all))
        } else {
            match self.send(root, tag, payload) {
                Ok(()) => Ok(None),
                // A dead root cannot collect; nothing for this rank to do.
                Err(SendError {
                    kind: SendErrorKind::Disconnected | SendErrorKind::RetryBudgetExhausted { .. },
                    ..
                }) => Ok(None),
                Err(e) => Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, KillSpec, TargetedFault};
    use crate::group::{run_group, run_group_with, GroupOptions};

    #[test]
    fn ring_pass() {
        let out = run_group(4, CostModel::free(), |ep| {
            let next = (ep.rank() + 1) % ep.size();
            let prev = (ep.rank() + ep.size() - 1) % ep.size();
            ep.send(next, 7, Bytes::from(vec![ep.rank() as u8]))
                .unwrap();
            let got = ep.recv(prev, 7).unwrap();
            got[0] as usize
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn exchange_swaps_payloads() {
        let out = run_group(2, CostModel::free(), |ep| {
            let peer = 1 - ep.rank();
            let got = ep
                .exchange(peer, 0, Bytes::from(vec![ep.rank() as u8; 3]))
                .unwrap();
            got[0]
        });
        assert_eq!(out.results, vec![1, 0]);
    }

    #[test]
    fn tag_mismatch_detected() {
        let out = run_group(2, CostModel::free(), |ep| {
            let peer = 1 - ep.rank();
            ep.send(peer, 1, Bytes::new()).unwrap();
            matches!(ep.recv(peer, 2), Err(RecvError::TagMismatch { .. }))
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn gather_collects_at_root() {
        let out = run_group(4, CostModel::free(), |ep| {
            let payload = Bytes::from(vec![ep.rank() as u8 * 10]);
            ep.gather(2, 5, payload).unwrap()
        });
        for (rank, res) in out.results.iter().enumerate() {
            if rank == 2 {
                let all = res.as_ref().unwrap();
                let vals: Vec<u8> = all.iter().map(|b| b[0]).collect();
                assert_eq!(vals, vec![0, 10, 20, 30]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn stats_count_bytes_and_model_time() {
        let cost = CostModel {
            t_s: 1e-3,
            t_c: 1e-6,
        };
        let out = run_group(2, cost, |ep| {
            let peer = 1 - ep.rank();
            let _ = ep.exchange(peer, 0, Bytes::from(vec![0u8; 1000])).unwrap();
        });
        for s in &out.stats {
            assert_eq!(s.sent_bytes, 1000);
            assert_eq!(s.recv_bytes, 1000);
            assert_eq!(s.sent_messages, 1);
            assert_eq!(s.recv_messages, 1);
            assert!((s.modeled_comm_seconds - (1e-3 + 1000.0 * 1e-6)).abs() < 1e-12);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        COUNTER.store(0, Ordering::SeqCst);
        let out = run_group(8, CostModel::free(), |ep| {
            COUNTER.fetch_add(1, Ordering::SeqCst);
            ep.barrier();
            // After the barrier every rank must observe all 8 increments.
            COUNTER.load(Ordering::SeqCst)
        });
        assert!(out.results.iter().all(|&c| c == 8));
    }

    #[test]
    fn self_send_works() {
        let out = run_group(1, CostModel::free(), |ep| {
            ep.send(0, 9, Bytes::from_static(b"hi")).unwrap();
            ep.recv(0, 9).unwrap()
        });
        assert_eq!(&out.results[0][..], b"hi");
    }

    #[test]
    fn send_to_exited_peer_returns_error_not_panic() {
        let out = run_group(2, CostModel::free(), |ep| {
            if ep.rank() == 1 {
                return true; // exit immediately; rank 0 sends into the void
            }
            // Retry until rank 1's endpoint is actually dropped.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match ep.send(1, 0, Bytes::from_static(b"x")) {
                    Err(SendError {
                        to: 1,
                        kind: SendErrorKind::Disconnected,
                    }) => return true,
                    Ok(()) => {
                        if Instant::now() > deadline {
                            return false;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return false,
                }
            }
        });
        assert!(out.results.iter().all(|&ok| ok), "expected SendError");
    }

    #[test]
    fn configurable_recv_deadline_times_out_fast() {
        let options = GroupOptions {
            cost: CostModel::free(),
            recv_deadline: Duration::from_millis(100),
            ..Default::default()
        };
        let started = Instant::now();
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 1 {
                // Stay alive past rank 0's deadline so the channel
                // remains open and the timeout (not a disconnect) fires.
                std::thread::sleep(Duration::from_millis(400));
                return None;
            }
            Some(ep.recv(1, 0))
        });
        assert_eq!(
            out.results[0],
            Some(Err(RecvError::Timeout {
                from: 1,
                waited: Duration::from_millis(100),
            }))
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "short deadline must not fall back to the 60s default"
        );
    }

    #[test]
    fn reliable_mode_delivers_like_raw() {
        let options = GroupOptions {
            cost: CostModel::free(),
            reliability: ReliabilityConfig::on(),
            ..Default::default()
        };
        let out = run_group_with(4, options, |ep| {
            let next = (ep.rank() + 1) % ep.size();
            let prev = (ep.rank() + ep.size() - 1) % ep.size();
            ep.send(next, 7, Bytes::from(vec![ep.rank() as u8; 128]))
                .unwrap();
            let got = ep.recv(prev, 7).unwrap();
            got[0] as usize
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
        for s in &out.stats {
            // Logical counters see the app payload, not the framing.
            assert_eq!(s.sent_bytes, 128);
            assert_eq!(s.recv_bytes, 128);
            assert_eq!(s.retransmits, 0);
            assert_eq!(s.corruptions_detected, 0);
            // Each rank received one data frame header + one ack frame.
            assert_eq!(s.overhead_bytes, (HEADER_LEN + HEADER_LEN) as u64);
        }
    }

    #[test]
    fn dropped_data_frame_is_retransmitted() {
        let faults = FaultConfig {
            target: Some(TargetedFault {
                src: 0,
                dst: 1,
                class: StreamClass::Data,
                index: 0, // seq 0, attempt 0: the very first transmission
                action: FaultAction::Drop,
            }),
            ..Default::default()
        };
        let options = GroupOptions {
            cost: CostModel::free(),
            reliability: ReliabilityConfig {
                enabled: true,
                ack_timeout: Duration::from_millis(2),
                ..Default::default()
            },
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 3, Bytes::from_static(b"precious")).unwrap();
                Bytes::new()
            } else {
                ep.recv(0, 3).unwrap()
            }
        });
        assert_eq!(&out.results[1][..], b"precious");
        assert!(out.stats[0].retransmits >= 1, "drop must force a retry");
        assert!(out.stats[0].ack_timeouts >= 1);
        assert!(out.stats[0].retransmit_bytes >= (HEADER_LEN + 8) as u64);
    }

    #[test]
    fn corrupted_data_frame_is_detected_and_retransmitted() {
        let faults = FaultConfig {
            target: Some(TargetedFault {
                src: 0,
                dst: 1,
                class: StreamClass::Data,
                index: 0,
                action: FaultAction::Corrupt,
            }),
            ..Default::default()
        };
        let options = GroupOptions {
            cost: CostModel::free(),
            reliability: ReliabilityConfig {
                enabled: true,
                ack_timeout: Duration::from_millis(2),
                ..Default::default()
            },
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 3, Bytes::from_static(b"precious")).unwrap();
                Bytes::new()
            } else {
                ep.recv(0, 3).unwrap()
            }
        });
        assert_eq!(&out.results[1][..], b"precious", "payload must heal");
        assert!(out.stats[1].corruptions_detected >= 1);
        assert!(out.stats[0].retransmits >= 1);
    }

    #[test]
    fn duplicated_data_frame_is_deduplicated() {
        let faults = FaultConfig {
            target: Some(TargetedFault {
                src: 0,
                dst: 1,
                class: StreamClass::Data,
                index: 0,
                action: FaultAction::Duplicate,
            }),
            ..Default::default()
        };
        let options = GroupOptions {
            cost: CostModel::free(),
            reliability: ReliabilityConfig::on(),
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 3, Bytes::from_static(b"once")).unwrap();
                ep.send(1, 3, Bytes::from_static(b"twice")).unwrap();
                (Bytes::new(), Bytes::new())
            } else {
                let a = ep.recv(0, 3).unwrap();
                let b = ep.recv(0, 3).unwrap();
                (a, b)
            }
        });
        assert_eq!(&out.results[1].0[..], b"once");
        assert_eq!(&out.results[1].1[..], b"twice");
        assert_eq!(out.stats[1].recv_messages, 2, "duplicate must not surface");
    }

    #[test]
    fn silent_peer_exhausts_retry_budget() {
        // Every data frame from 0 to 1 is dropped; rank 1 stays alive
        // (pumping inside its own recv) but never sees anything, so the
        // sender burns its whole retry budget.
        let faults = FaultConfig {
            drop: 1.0,
            ..Default::default()
        };
        let options = GroupOptions {
            cost: CostModel::free(),
            recv_deadline: Duration::from_millis(500),
            reliability: ReliabilityConfig {
                enabled: true,
                ack_timeout: Duration::from_millis(1),
                max_retries: 3,
                backoff: 2.0,
                max_backoff: Duration::from_millis(4),
            },
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 0 {
                match ep.send(1, 0, Bytes::from_static(b"lost")) {
                    Err(SendError {
                        kind: SendErrorKind::RetryBudgetExhausted { attempts },
                        ..
                    }) => attempts as usize,
                    other => panic!("expected retry exhaustion, got {other:?}"),
                }
            } else {
                // The sender gives up long before our deadline and
                // exits, so we observe either its disconnect or (rarely,
                // under scheduler delay) our own timeout.
                match ep.recv(0, 0) {
                    Err(RecvError::Timeout { .. } | RecvError::Disconnected { .. }) => usize::MAX,
                    other => panic!("expected timeout/disconnect, got {other:?}"),
                }
            }
        });
        assert_eq!(out.results[0], 4, "initial send + 3 retries");
        assert_eq!(out.stats[0].retransmits, 3);
        assert_eq!(out.stats[0].ack_timeouts, 4);
    }

    #[test]
    fn killed_rank_errors_on_every_operation() {
        let faults = FaultConfig {
            kill: Some(KillSpec {
                rank: 0,
                after_ops: 1,
            }),
            ..Default::default()
        };
        let options = GroupOptions {
            cost: CostModel::free(),
            recv_deadline: Duration::from_secs(5),
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 0 {
                // First op succeeds, second hits the kill threshold.
                ep.send(1, 0, Bytes::from_static(b"last words")).unwrap();
                let first = ep.recv(1, 0);
                let second = ep.send(1, 0, Bytes::new());
                assert_eq!(first, Err(RecvError::Killed { rank: 0 }));
                assert_eq!(
                    second,
                    Err(SendError {
                        to: 1,
                        kind: SendErrorKind::Killed
                    })
                );
                assert!(ep.is_dead());
                0
            } else {
                // The dying rank's buffered message still arrives...
                let got = ep.recv(0, 0).unwrap();
                assert_eq!(&got[..], b"last words");
                // ...and once its endpoint drops, we observe disconnect
                // rather than hanging.
                match ep.recv(0, 0) {
                    Err(RecvError::Disconnected { from: 0 }) => 1,
                    other => panic!("expected disconnect, got {other:?}"),
                }
            }
        });
        assert_eq!(out.results, vec![0, 1]);
        assert_eq!(out.dead_ranks, vec![0]);
    }

    #[test]
    fn gather_tolerant_skips_dead_contributor() {
        let faults = FaultConfig {
            kill: Some(KillSpec {
                rank: 1,
                after_ops: 0,
            }),
            ..Default::default()
        };
        let options = GroupOptions {
            cost: CostModel::free(),
            recv_deadline: Duration::from_secs(5),
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(3, options, |ep| {
            let payload = Bytes::from(vec![ep.rank() as u8]);
            ep.gather_tolerant(0, 4, payload)
        });
        let root = out.results[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(root.len(), 3);
        assert_eq!(root[0].as_ref().unwrap()[0], 0);
        assert!(root[1].is_none(), "killed rank contributes nothing");
        assert_eq!(root[2].as_ref().unwrap()[0], 2);
        assert_eq!(out.dead_ranks, vec![1]);
    }

    #[test]
    fn raw_mode_probabilistic_drops_are_deterministic() {
        let run = || {
            let faults = FaultConfig {
                drop: 0.5,
                seed: 99,
                ..Default::default()
            };
            let options = GroupOptions {
                cost: CostModel::free(),
                recv_deadline: Duration::from_millis(50),
                faults: Some(faults),
                ..Default::default()
            };
            run_group_with(2, options, |ep| {
                if ep.rank() == 0 {
                    for i in 0..32u8 {
                        ep.send(1, 0, Bytes::from(vec![i])).unwrap();
                    }
                    Vec::new()
                } else {
                    let mut got = Vec::new();
                    while let Ok(b) = ep.recv(0, 0) {
                        got.push(b[0]);
                    }
                    got
                }
            })
            .results[1]
                .clone()
        };
        let first = run();
        assert!(
            !first.is_empty() && first.len() < 32,
            "drop=0.5 should lose some but not all of 32 messages, kept {}",
            first.len()
        );
        assert_eq!(first, run(), "same seed must drop the same messages");
    }

    #[test]
    fn lost_ack_does_not_fake_a_dead_peer() {
        // Regression: rank 1 receives the data frame but its ack is
        // dropped; rank 1 then finishes its (only) receive. Rank 0's
        // retransmission must be re-acked by the lingering rank 1
        // instead of hitting a closed channel and reporting the peer
        // dead.
        let faults = FaultConfig {
            target: Some(TargetedFault {
                src: 1,
                dst: 0,
                class: StreamClass::Ack,
                index: 0, // (seq 0) << 16 | (first ack)
                action: FaultAction::Drop,
            }),
            ..Default::default()
        };
        let options = GroupOptions {
            reliability: ReliabilityConfig {
                enabled: true,
                ack_timeout: Duration::from_millis(5),
                ..ReliabilityConfig::on()
            },
            recv_deadline: Duration::from_secs(2),
            faults: Some(faults),
            ..Default::default()
        };
        let out = run_group_with(2, options, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 7, Bytes::from_static(b"payload")).is_ok()
            } else {
                ep.recv(0, 7).is_ok()
            }
        });
        assert!(out.results[0], "sender must not see a dead peer");
        assert!(out.results[1], "receiver got the data");
        assert!(out.dead_ranks.is_empty());
        assert!(
            out.stats[0].retransmits >= 1,
            "the lost ack must force at least one retransmission"
        );
    }

    /// Collects `n` any-source messages at rank 0 and returns
    /// `(src, first_payload_byte)` pairs in arrival order. A source that
    /// finishes (disconnects after draining) is dropped from the await
    /// set — the caller discipline `recv_any` is designed for.
    fn collect_any(ep: &mut Endpoint, n: usize, tag: Tag) -> Vec<(usize, u8)> {
        let mut awaiting: Vec<bool> = (0..ep.size()).map(|r| r != 0).collect();
        let mut got = Vec::new();
        while got.len() < n {
            match ep.recv_any(&awaiting, tag) {
                Ok((src, bytes)) => got.push((src, bytes[0])),
                Err(RecvError::Disconnected { from }) => awaiting[from] = false,
                Err(e) => panic!("unexpected recv_any error: {e:?}"),
            }
        }
        got
    }

    #[test]
    fn recv_any_collects_from_every_source_on_the_real_transport() {
        let out = run_group(4, CostModel::free(), |ep| {
            if ep.rank() == 0 {
                let mut got = collect_any(ep, 3, 9);
                got.sort();
                got
            } else {
                ep.send(0, 9, Bytes::from(vec![ep.rank() as u8 * 2]))
                    .unwrap();
                Vec::new()
            }
        });
        assert_eq!(out.results[0], vec![(1, 2), (2, 4), (3, 6)]);
    }

    #[test]
    fn recv_any_collects_under_the_virtual_clock_and_replays() {
        let run = |seed: u64| {
            let options = GroupOptions {
                cost: CostModel::sp2(),
                schedule: Some(crate::vclock::ScheduleSpec::seeded(seed)),
                ..Default::default()
            };
            run_group_with(4, options, |ep| {
                if ep.rank() == 0 {
                    collect_any(ep, 6, 9)
                } else {
                    for i in 0..2u8 {
                        ep.send(0, 9, Bytes::from(vec![ep.rank() as u8 * 10 + i]))
                            .unwrap();
                    }
                    Vec::new()
                }
            })
            .results[0]
                .clone()
        };
        let a = run(3);
        assert_eq!(a.len(), 6);
        // Per-link FIFO: each source's two messages arrive in send order.
        for src in 1..4usize {
            let from_src: Vec<u8> = a
                .iter()
                .filter(|(s, _)| *s == src)
                .map(|(_, b)| *b)
                .collect();
            assert_eq!(from_src, vec![src as u8 * 10, src as u8 * 10 + 1]);
        }
        // Same seed ⇒ same interleave, bit for bit.
        assert_eq!(a, run(3));
    }

    #[test]
    fn send_timed_stamps_control_virtual_delivery_order() {
        // Rank 1 sends FIRST but with a large completion stamp; rank 2
        // sends later with a tiny stamp. Under the virtual clock the
        // stamps (not issue order) decide arrival order at rank 0.
        let options = GroupOptions {
            cost: CostModel::sp2(),
            schedule: Some(crate::vclock::ScheduleSpec::seeded(0)),
            ..Default::default()
        };
        let out = run_group_with(3, options, |ep| match ep.rank() {
            0 => collect_any(ep, 2, 4),
            1 => {
                ep.send_timed(0, 4, Bytes::from_static(b"slow"), 5.0)
                    .unwrap();
                Vec::new()
            }
            _ => {
                ep.send_timed(0, 4, Bytes::from_static(b"fast"), 0.001)
                    .unwrap();
                Vec::new()
            }
        });
        let order: Vec<usize> = out.results[0].iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![2, 1], "the smaller render stamp lands first");
    }

    #[test]
    fn recv_any_drains_then_reports_a_dead_awaited_peer() {
        for schedule in [None, Some(crate::vclock::ScheduleSpec::seeded(7))] {
            let options = GroupOptions {
                cost: CostModel::free(),
                recv_deadline: Duration::from_secs(5),
                schedule,
                ..Default::default()
            };
            let out = run_group_with(2, options, |ep| {
                if ep.rank() == 1 {
                    // Send one message, then exit (disconnect).
                    ep.send(0, 4, Bytes::from_static(b"x")).unwrap();
                    return (0, false);
                }
                let awaiting = vec![false, true];
                // The buffered message must arrive before the disconnect.
                let (src, _) = ep.recv_any(&awaiting, 4).unwrap();
                let disc = matches!(
                    ep.recv_any(&awaiting, 4),
                    Err(RecvError::Disconnected { from: 1 })
                );
                (src, disc)
            });
            assert_eq!(out.results[0], (1, true));
        }
    }

    #[test]
    fn recv_any_interleaves_with_selective_recv_without_losing_messages() {
        // recv_any drains the sim inbox into per-link pending buffers; a
        // later *selective* recv must still find those messages.
        let options = GroupOptions {
            cost: CostModel::sp2(),
            schedule: Some(crate::vclock::ScheduleSpec::seeded(1)),
            ..Default::default()
        };
        let out = run_group_with(3, options, |ep| {
            if ep.rank() == 0 {
                // Rank 1 sends tag 4 (any-source phase) and tag 5
                // (selective phase); rank 2 sends tag 4 only. Each
                // source is dropped from the await set after its one
                // tag-4 message (the stream-close discipline), so rank
                // 1's tag-5 message is never misread by `recv_any`.
                let mut awaiting = vec![false, true, true];
                let mut any = Vec::new();
                while any.len() < 2 {
                    match ep.recv_any(&awaiting, 4) {
                        Ok((src, _)) => {
                            awaiting[src] = false;
                            any.push(src);
                        }
                        Err(RecvError::Disconnected { from }) => awaiting[from] = false,
                        Err(e) => panic!("unexpected: {e:?}"),
                    }
                }
                any.sort();
                let selective = ep.recv(1, 5).unwrap();
                (any, selective[0])
            } else {
                ep.send(0, 4, Bytes::from_static(b"a")).unwrap();
                if ep.rank() == 1 {
                    ep.send(0, 5, Bytes::from_static(b"z")).unwrap();
                }
                (Vec::new(), 0)
            }
        });
        assert_eq!(out.results[0], (vec![1, 2], b'z'));
    }
}
