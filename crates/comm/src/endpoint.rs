//! One rank's communication endpoint.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::cost::CostModel;
use crate::stats::TrafficStats;
use crate::trace::{EventKind, Tracer};

/// Message tags, used to assert protocol agreement between matched
/// send/receive pairs (like MPI tags, but mismatches are hard errors).
pub type Tag = u32;

/// A message in flight: payload plus its tag.
#[derive(Clone, Debug)]
pub struct Message {
    /// Protocol tag supplied by the sender.
    pub tag: Tag,
    /// Payload bytes (cheaply cloneable).
    pub payload: Bytes,
}

/// Error from a receive operation.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the deadline — almost always a protocol
    /// deadlock in the compositing schedule.
    Timeout { from: usize, waited: Duration },
    /// A message arrived with an unexpected tag.
    TagMismatch {
        from: usize,
        expected: Tag,
        got: Tag,
    },
    /// The peer's endpoint was dropped (its rank function returned or
    /// panicked before sending).
    Disconnected { from: usize },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { from, waited } => {
                write!(
                    f,
                    "timed out after {waited:?} waiting for a message from rank {from}"
                )
            }
            RecvError::TagMismatch {
                from,
                expected,
                got,
            } => {
                write!(
                    f,
                    "tag mismatch from rank {from}: expected {expected}, got {got}"
                )
            }
            RecvError::Disconnected { from } => {
                write!(f, "rank {from} disconnected before sending")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// How long a blocking receive waits before declaring a deadlock.
const RECV_DEADLINE: Duration = Duration::from_secs(60);

/// A rank's private endpoint into the group.
///
/// Sends are buffered (never block); receives are selective by source
/// rank, which matches how every compositing schedule here names its
/// communication partner explicitly.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `to[dst]` delivers into dst's mailbox slot for this rank.
    to: Vec<Sender<Message>>,
    /// `from[src]` receives messages sent by `src` to this rank.
    from: Vec<Receiver<Message>>,
    barrier: Arc<std::sync::Barrier>,
    cost: CostModel,
    stats: TrafficStats,
    tracer: Option<Tracer>,
}

impl Endpoint {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        to: Vec<Sender<Message>>,
        from: Vec<Receiver<Message>>,
        barrier: Arc<std::sync::Barrier>,
        cost: CostModel,
    ) -> Self {
        Endpoint {
            rank,
            size,
            to,
            from,
            barrier,
            cost,
            stats: TrafficStats::default(),
            tracer: None,
        }
    }

    /// Attaches a trace collector (see [`crate::trace::run_group_traced`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group (the paper's `P`).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The group's communication cost model.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Traffic recorded so far by this rank.
    #[inline]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Consumes the endpoint, yielding its final traffic stats.
    pub fn into_stats(self) -> TrafficStats {
        self.stats
    }

    /// Sends `payload` to `dst` with `tag`. Never blocks.
    pub fn send(&mut self, dst: usize, tag: Tag, payload: Bytes) {
        assert!(
            dst < self.size,
            "send to rank {dst} out of range (size {})",
            self.size
        );
        if let Some(t) = &self.tracer {
            t.record(self.rank, dst, EventKind::Send, payload.len(), tag);
        }
        self.stats.on_send(payload.len());
        self.to[dst]
            .send(Message { tag, payload })
            .unwrap_or_else(|_| panic!("rank {dst} mailbox closed (peer exited early)"));
    }

    /// Receives the next message from `src`, requiring `tag`.
    ///
    /// Blocks up to an internal deadline, then returns
    /// [`RecvError::Timeout`] so schedule deadlocks surface as test
    /// failures instead of hangs.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Result<Bytes, RecvError> {
        assert!(
            src < self.size,
            "recv from rank {src} out of range (size {})",
            self.size
        );
        match self.from[src].recv_timeout(RECV_DEADLINE) {
            Ok(msg) => {
                if msg.tag != tag {
                    return Err(RecvError::TagMismatch {
                        from: src,
                        expected: tag,
                        got: msg.tag,
                    });
                }
                if let Some(tr) = &self.tracer {
                    tr.record(self.rank, src, EventKind::Recv, msg.payload.len(), tag);
                }
                let t = self.cost.message_seconds(msg.payload.len());
                self.stats.on_recv(msg.payload.len(), t);
                Ok(msg.payload)
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout {
                from: src,
                waited: RECV_DEADLINE,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected { from: src }),
        }
    }

    /// Full-duplex exchange with `peer`: buffered send, then blocking
    /// receive. Deadlock-free for any pairing where both sides call it.
    ///
    /// This is the binary-swap primitive: "each PE sends the half subimage
    /// it keeps to PE'; each PE receives the half subimage from PE'".
    pub fn exchange(&mut self, peer: usize, tag: Tag, payload: Bytes) -> Result<Bytes, RecvError> {
        self.send(peer, tag, payload);
        self.recv(peer, tag)
    }

    /// Blocks until every rank in the group has reached the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Gathers every rank's payload at `root`; returns `Some(payloads)`
    /// (indexed by rank) at the root, `None` elsewhere.
    pub fn gather(
        &mut self,
        root: usize,
        tag: Tag,
        payload: Bytes,
    ) -> Result<Option<Vec<Bytes>>, RecvError> {
        if self.rank == root {
            let mut all: Vec<Bytes> = Vec::with_capacity(self.size);
            for src in 0..self.size {
                if src == self.rank {
                    all.push(payload.clone());
                } else {
                    all.push(self.recv(src, tag)?);
                }
            }
            Ok(Some(all))
        } else {
            self.send(root, tag, payload);
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_group;

    #[test]
    fn ring_pass() {
        let out = run_group(4, CostModel::free(), |ep| {
            let next = (ep.rank() + 1) % ep.size();
            let prev = (ep.rank() + ep.size() - 1) % ep.size();
            ep.send(next, 7, Bytes::from(vec![ep.rank() as u8]));
            let got = ep.recv(prev, 7).unwrap();
            got[0] as usize
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn exchange_swaps_payloads() {
        let out = run_group(2, CostModel::free(), |ep| {
            let peer = 1 - ep.rank();
            let got = ep
                .exchange(peer, 0, Bytes::from(vec![ep.rank() as u8; 3]))
                .unwrap();
            got[0]
        });
        assert_eq!(out.results, vec![1, 0]);
    }

    #[test]
    fn tag_mismatch_detected() {
        let out = run_group(2, CostModel::free(), |ep| {
            let peer = 1 - ep.rank();
            ep.send(peer, 1, Bytes::new());
            matches!(ep.recv(peer, 2), Err(RecvError::TagMismatch { .. }))
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn gather_collects_at_root() {
        let out = run_group(4, CostModel::free(), |ep| {
            let payload = Bytes::from(vec![ep.rank() as u8 * 10]);
            ep.gather(2, 5, payload).unwrap()
        });
        for (rank, res) in out.results.iter().enumerate() {
            if rank == 2 {
                let all = res.as_ref().unwrap();
                let vals: Vec<u8> = all.iter().map(|b| b[0]).collect();
                assert_eq!(vals, vec![0, 10, 20, 30]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn stats_count_bytes_and_model_time() {
        let cost = CostModel {
            t_s: 1e-3,
            t_c: 1e-6,
        };
        let out = run_group(2, cost, |ep| {
            let peer = 1 - ep.rank();
            let _ = ep.exchange(peer, 0, Bytes::from(vec![0u8; 1000])).unwrap();
        });
        for s in &out.stats {
            assert_eq!(s.sent_bytes, 1000);
            assert_eq!(s.recv_bytes, 1000);
            assert_eq!(s.sent_messages, 1);
            assert_eq!(s.recv_messages, 1);
            assert!((s.modeled_comm_seconds - (1e-3 + 1000.0 * 1e-6)).abs() < 1e-12);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        COUNTER.store(0, Ordering::SeqCst);
        let out = run_group(8, CostModel::free(), |ep| {
            COUNTER.fetch_add(1, Ordering::SeqCst);
            ep.barrier();
            // After the barrier every rank must observe all 8 increments.
            COUNTER.load(Ordering::SeqCst)
        });
        assert!(out.results.iter().all(|&c| c == 8));
    }

    #[test]
    fn self_send_works() {
        let out = run_group(1, CostModel::free(), |ep| {
            ep.send(0, 9, Bytes::from_static(b"hi"));
            ep.recv(0, 9).unwrap()
        });
        assert_eq!(&out.results[0][..], b"hi");
    }
}
