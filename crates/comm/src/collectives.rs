//! Collective operations built on point-to-point messages.
//!
//! The sort-last system needs a handful of collectives: the partitioning
//! phase *scatters* subvolume blocks from the input rank, experiment
//! setup *broadcasts* small configuration blobs, and diagnostics
//! *reduce* per-rank scalars. All are implemented as binomial trees over
//! the flat [`Endpoint`] send/recv primitives, so their traffic is
//! accounted like any other message.

use bytes::Bytes;

use crate::endpoint::{CommError, Endpoint, Tag};

/// Scatters one payload per rank from `root`; returns this rank's
/// payload. The root sends `P−1` messages directly (the natural pattern
/// when only the root holds the data, as in volume distribution).
pub fn scatter(
    ep: &mut Endpoint,
    root: usize,
    tag: Tag,
    payloads: Option<Vec<Bytes>>,
) -> Result<Bytes, CommError> {
    if ep.rank() == root {
        let payloads = payloads.expect("root must supply one payload per rank");
        assert_eq!(
            payloads.len(),
            ep.size(),
            "scatter needs exactly one payload per rank"
        );
        let mut own = None;
        for (dst, payload) in payloads.into_iter().enumerate() {
            if dst == ep.rank() {
                own = Some(payload);
            } else {
                ep.send(dst, tag, payload)?;
            }
        }
        Ok(own.expect("root keeps its own payload"))
    } else {
        Ok(ep.recv(root, tag)?)
    }
}

/// Broadcasts `payload` from `root` to every rank along a binomial tree
/// (`⌈log2 P⌉` rounds); returns the payload everywhere.
pub fn broadcast(
    ep: &mut Endpoint,
    root: usize,
    tag: Tag,
    payload: Option<Bytes>,
) -> Result<Bytes, CommError> {
    let p = ep.size();
    // Work in a rotated space where the root is rank 0.
    let me = (ep.rank() + p - root) % p;
    let data = if me == 0 {
        payload.expect("root must supply the broadcast payload")
    } else {
        // Receive from the parent: clear the lowest set bit.
        let parent = me & (me - 1);
        ep.recv((parent + root) % p, tag)?
    };
    // Forward to children: set each bit above our lowest set bit (or all
    // bits for the root) while staying in range.
    let lowest = if me == 0 {
        usize::BITS as usize
    } else {
        me.trailing_zeros() as usize
    };
    for b in (0..lowest.min(usize::BITS as usize - 1)).rev() {
        let child = me | (1 << b);
        if child < p && child != me {
            ep.send((child + root) % p, tag, data.clone())?;
        }
    }
    Ok(data)
}

/// Reduces per-rank byte payloads to `root` along a binomial tree with a
/// caller-supplied combining function; returns `Some(result)` at the
/// root, `None` elsewhere.
pub fn reduce(
    ep: &mut Endpoint,
    root: usize,
    tag: Tag,
    own: Bytes,
    mut combine: impl FnMut(Bytes, Bytes) -> Bytes,
) -> Result<Option<Bytes>, CommError> {
    let p = ep.size();
    let me = (ep.rank() + p - root) % p;
    let mut acc = own;
    let mut bit = 1usize;
    while bit < p {
        if me & bit != 0 {
            // Send to the partner below and retire.
            let dst = me & !bit;
            ep.send((dst + root) % p, tag, acc)?;
            return Ok(None);
        }
        let src = me | bit;
        if src < p {
            let incoming = ep.recv((src + root) % p, tag)?;
            acc = combine(acc, incoming);
        }
        bit <<= 1;
    }
    Ok(Some(acc))
}

/// All-gather: every rank contributes one payload and receives all of
/// them (indexed by rank). Implemented as gather-to-0 + broadcast.
pub fn all_gather(ep: &mut Endpoint, tag: Tag, own: Bytes) -> Result<Vec<Bytes>, CommError> {
    let gathered = ep.gather(0, tag, own)?;
    // Flatten to one frame: u32 count, then (u32 len, bytes) per rank.
    let frame = if let Some(parts) = gathered {
        let mut out = Vec::new();
        out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
        for part in &parts {
            out.extend_from_slice(&(part.len() as u32).to_le_bytes());
            out.extend_from_slice(part);
        }
        Some(Bytes::from(out))
    } else {
        None
    };
    let frame = broadcast(ep, 0, tag.wrapping_add(1), frame)?;
    // Decode.
    let mut parts = Vec::new();
    let mut pos = 0usize;
    let read_u32 = |buf: &Bytes, pos: &mut usize| {
        let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        v
    };
    let count = read_u32(&frame, &mut pos);
    for _ in 0..count {
        let len = read_u32(&frame, &mut pos);
        parts.push(frame.slice(pos..pos + len));
        pos += len;
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::group::run_group;

    #[test]
    fn scatter_delivers_per_rank_payloads() {
        for p in [1, 2, 5, 8] {
            let out = run_group(p, CostModel::free(), |ep| {
                let payloads = (ep.rank() == 2.min(p - 1)).then(|| {
                    (0..p)
                        .map(|r| Bytes::from(vec![r as u8; r + 1]))
                        .collect::<Vec<_>>()
                });
                let got = scatter(ep, 2.min(p - 1), 10, payloads).unwrap();
                (got.len(), got.first().copied())
            });
            for (rank, &(len, first)) in out.results.iter().enumerate() {
                assert_eq!(len, rank + 1);
                assert_eq!(first, Some(rank as u8));
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        for p in [1, 2, 3, 4, 7, 8, 13] {
            for root in [0, p - 1, p / 2] {
                let out = run_group(p, CostModel::free(), |ep| {
                    let payload = (ep.rank() == root).then(|| Bytes::from_static(b"hello fleet"));
                    broadcast(ep, root, 11, payload).unwrap()
                });
                for got in &out.results {
                    assert_eq!(&got[..], b"hello fleet");
                }
            }
        }
    }

    #[test]
    fn broadcast_uses_log_rounds_per_rank() {
        // No rank should send more than ⌈log2 P⌉ messages.
        let p = 16;
        let out = run_group(p, CostModel::free(), |ep| {
            let payload = (ep.rank() == 0).then(|| Bytes::from_static(b"x"));
            let _ = broadcast(ep, 0, 12, payload).unwrap();
            ep.stats().sent_messages
        });
        for &sent in &out.results {
            assert!(sent <= 4, "a rank sent {sent} messages");
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1, 2, 3, 6, 8] {
            for root in [0, p - 1] {
                let out = run_group(p, CostModel::free(), |ep| {
                    let own = Bytes::from(vec![ep.rank() as u8]);
                    reduce(ep, root, 13, own, |a, b| Bytes::from(vec![a[0] + b[0]]))
                        .unwrap()
                        .map(|b| b[0])
                });
                let expect: u8 = (0..p as u8).sum();
                for (rank, res) in out.results.iter().enumerate() {
                    if rank == root {
                        assert_eq!(*res, Some(expect), "p={p} root={root}");
                    } else {
                        assert_eq!(*res, None);
                    }
                }
            }
        }
    }

    #[test]
    fn all_gather_returns_everything_everywhere() {
        let p = 6;
        let out = run_group(p, CostModel::free(), |ep| {
            let own = Bytes::from(vec![ep.rank() as u8; ep.rank() + 1]);
            all_gather(ep, 20, own).unwrap()
        });
        for parts in &out.results {
            assert_eq!(parts.len(), p);
            for (rank, part) in parts.iter().enumerate() {
                assert_eq!(part.len(), rank + 1);
                assert!(part.iter().all(|&b| b == rank as u8));
            }
        }
    }
}
