//! Linear communication cost models.
//!
//! The paper's communication equations (2), (4), (6), (8) are all of the
//! form `Σ_k (T_s + bytes_k · T_c)`: a fixed start-up charge per message
//! plus a per-byte transmission charge. [`CostModel`] evaluates exactly
//! that, so the simulator's modeled `T_comm` matches the paper's analysis
//! given identical byte counts.

use serde::{Deserialize, Serialize};

/// A linear message cost model: `time(msg) = t_s + bytes · t_c`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Start-up time per message, in seconds (the paper's `T_s`).
    pub t_s: f64,
    /// Transmission time per byte, in seconds (the paper's `T_c`).
    pub t_c: f64,
}

impl CostModel {
    /// IBM SP2 High Performance Switch: ≈ 40 µs start-up, ≈ 35 MB/s
    /// sustained point-to-point bandwidth (mid-1990s POWER2 nodes).
    pub fn sp2() -> Self {
        CostModel {
            t_s: 40e-6,
            t_c: 1.0 / 35e6,
        }
    }

    /// Zero-cost model (useful for tests asserting byte counts only).
    pub fn free() -> Self {
        CostModel { t_s: 0.0, t_c: 0.0 }
    }

    /// Commodity fast-Ethernet-class network: 100 µs start-up, 10 MB/s.
    pub fn ethernet() -> Self {
        CostModel {
            t_s: 100e-6,
            t_c: 1.0 / 10e6,
        }
    }

    /// A modern low-latency interconnect (for what-if sweeps): 2 µs
    /// start-up, 10 GB/s.
    pub fn modern() -> Self {
        CostModel {
            t_s: 2e-6,
            t_c: 1.0 / 10e9,
        }
    }

    /// Time to deliver one message of `bytes` bytes, in seconds.
    #[inline]
    pub fn message_seconds(&self, bytes: usize) -> f64 {
        self.t_s + bytes as f64 * self.t_c
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::sp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine() {
        let m = CostModel { t_s: 1.0, t_c: 0.5 };
        assert_eq!(m.message_seconds(0), 1.0);
        assert_eq!(m.message_seconds(10), 6.0);
    }

    #[test]
    fn sp2_magnitudes() {
        let m = CostModel::sp2();
        // A 384×384 full frame of 16-byte pixels ≈ 2.36 MB → ~67 ms on HPS.
        let t = m.message_seconds(384 * 384 * 16);
        assert!(t > 0.05 && t < 0.08, "{t}");
    }

    #[test]
    fn free_model_is_zero() {
        assert_eq!(CostModel::free().message_seconds(12345), 0.0);
    }
}
