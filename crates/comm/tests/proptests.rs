//! Property-based tests for the message-passing substrate and its
//! collectives.

use bytes::Bytes;
use proptest::prelude::*;
use vr_comm::{all_gather, broadcast, reduce, run_group, scatter, CostModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_delivers_arbitrary_payloads(
        p in 1usize..12,
        root_seed in any::<usize>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let root = root_seed % p;
        let expect = payload.clone();
        let out = run_group(p, CostModel::free(), move |ep| {
            let data = (ep.rank() == root).then(|| Bytes::from(payload.clone()));
            broadcast(ep, root, 1, data).unwrap().to_vec()
        });
        for got in &out.results {
            prop_assert_eq!(got, &expect);
        }
    }

    #[test]
    fn scatter_then_gather_is_identity(
        p in 1usize..10,
        seed in any::<u8>(),
    ) {
        let out = run_group(p, CostModel::free(), move |ep| {
            let payloads = (ep.rank() == 0).then(|| {
                (0..ep.size())
                    .map(|r| Bytes::from(vec![seed.wrapping_add(r as u8); r % 7 + 1]))
                    .collect::<Vec<_>>()
            });
            let mine = scatter(ep, 0, 2, payloads).unwrap();
            ep.gather(0, 3, mine).unwrap()
        });
        let all = out.results[0].as_ref().unwrap();
        for (r, part) in all.iter().enumerate() {
            prop_assert_eq!(part.len(), r % 7 + 1);
            prop_assert!(part.iter().all(|&b| b == seed.wrapping_add(r as u8)));
        }
    }

    #[test]
    fn reduce_is_order_insensitive_for_commutative_ops(
        p in 1usize..12,
        values in proptest::collection::vec(0u32..1000, 12),
    ) {
        let vals = values[..p].to_vec();
        let expect: u32 = vals.iter().sum();
        let out = run_group(p, CostModel::free(), move |ep| {
            let own = Bytes::from(vals[ep.rank()].to_le_bytes().to_vec());
            reduce(ep, 0, 4, own, |a, b| {
                let x = u32::from_le_bytes(a[..4].try_into().unwrap());
                let y = u32::from_le_bytes(b[..4].try_into().unwrap());
                Bytes::from((x + y).to_le_bytes().to_vec())
            })
            .unwrap()
            .map(|b| u32::from_le_bytes(b[..4].try_into().unwrap()))
        });
        prop_assert_eq!(out.results[0], Some(expect));
    }

    #[test]
    fn all_gather_is_rank_indexed(p in 1usize..10) {
        let out = run_group(p, CostModel::free(), |ep| {
            let own = Bytes::from(vec![ep.rank() as u8 + 1]);
            all_gather(ep, 5, own).unwrap()
        });
        for parts in &out.results {
            prop_assert_eq!(parts.len(), p);
            for (r, part) in parts.iter().enumerate() {
                prop_assert_eq!(part[0], r as u8 + 1);
            }
        }
    }

    #[test]
    fn traffic_conservation_under_random_exchanges(
        p in 2usize..8,
        rounds in 1usize..5,
    ) {
        // Every rank exchanges with a rotating partner each round; total
        // sent must equal total received across the group.
        let out = run_group(p, CostModel::sp2(), move |ep| {
            for round in 1..=rounds {
                // Fixed involution pairing (r ^ 1); an odd tail rank idles.
                let peer = ep.rank() ^ 1;
                if peer < ep.size() {
                    let _ = ep
                        .exchange(peer, round as u32, Bytes::from(vec![0u8; round * 10]))
                        .unwrap();
                }
            }
        });
        let sent: u64 = out.stats.iter().map(|s| s.sent_bytes).sum();
        let recvd: u64 = out.stats.iter().map(|s| s.recv_bytes).sum();
        prop_assert_eq!(sent, recvd);
    }

    #[test]
    fn cost_model_is_monotone_in_bytes(t_s in 0.0f64..1e-3, t_c in 0.0f64..1e-6, a in 0usize..100_000, b in 0usize..100_000) {
        let m = CostModel { t_s, t_c };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.message_seconds(lo) <= m.message_seconds(hi));
    }
}
