//! Minimal stand-in for the `rand` crate so the workspace builds
//! without a registry. Provides a deterministic SplitMix64-backed
//! `StdRng` with the `Rng`/`SeedableRng` surface this workspace uses.
//! Not cryptographically secure; statistical quality is adequate for
//! test-data generation.

/// Core RNG interface: a 64-bit word source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges a value can be sampled from.
///
/// The blanket impls over [`SampleUniform`] mirror rand's trait shape so
/// type inference unifies an unsuffixed range literal with the expected
/// output type (e.g. `radius * rng.gen_range(0.5..1.5)` samples `f32`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Standard distribution: the default way to draw a `T`.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Process-global generator seeded from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.1..0.9);
            assert!((0.1..0.9).contains(&x));
            let n: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let i: i32 = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
