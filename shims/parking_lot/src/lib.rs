//! Minimal stand-in for `parking_lot` so the workspace builds without a
//! registry. Backed by `std::sync`; lock poisoning is ignored to match
//! parking_lot's non-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's `lock() -> guard` (non-poisoning) API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// RwLock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}
