//! Minimal stand-in for `criterion` so the bench targets build and run
//! without a registry. Each benchmark body executes a small fixed number
//! of iterations and reports mean wall time — enough to smoke-test bench
//! code and get rough numbers, without criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Iterations per benchmark body (the shim does no statistical sampling).
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments such as `--bench`/`--test`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher { elapsed: 0.0, iters: 0 };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as f64
    } else {
        0.0
    };
    println!("bench {name:<50} {:>12.3} µs/iter", mean * 1e6);
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    elapsed: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed().as_secs_f64();
            self.iters += 1;
        }
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Work-per-iteration hint; accepted and ignored.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) criterion's sample-count knob.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepts (and ignores) the throughput hint.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
