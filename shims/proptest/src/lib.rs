//! Minimal stand-in for the `proptest` crate so the workspace builds
//! and tests without a registry. Supports the subset this workspace
//! uses: the `proptest!` macro with optional `proptest_config`, range /
//! tuple / `Just` / `any` / collection strategies, `prop_map`,
//! `prop_filter_map`, `prop_shuffle`, weighted `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Generation is deterministic (seeded per test name) and there is no
//! shrinking: a failing case reports the inputs via the panic message.
//! Seeds persisted in a sibling `<test file>.proptest-regressions` file
//! are replayed before novel cases, and a failing novel case appends
//! its seed there (`cc <16 hex digits>`), mirroring upstream proptest's
//! workflow.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current test case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
}

/// Rejects the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::test_runner::run_cases_in($cfg, file!(), stringify!($name), |__rng| {
                    $(
                        let __strategy = $strat;
                        let $pat = match $crate::strategy::Strategy::sample(&__strategy, __rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::option::Option::Some(::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::reject("strategy rejection"),
                                ))
                            }
                        };
                    )+
                    ::core::option::Option::Some(
                        (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })(),
                    )
                });
            }
        )*
    };
}
