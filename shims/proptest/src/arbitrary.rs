//! `any::<T>()` support for the proptest shim.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary_value(rng))
    }
}

/// The canonical strategy for `T` (matches `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
    }
}
