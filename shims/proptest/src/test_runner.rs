//! Deterministic case runner and RNG for the proptest shim.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Attempts (rejections included) allowed per accepted case.
    pub max_local_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_local_rejects: 1000,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed; the whole test fails.
    Fail(String),
    /// The case was rejected (`prop_assume!`); it is resampled.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty domain");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `config.cases` accepted cases of `f`, resampling rejections.
///
/// `f` returns `None` (or `Some(Err(Reject))`) for a rejected sample and
/// `Some(Err(Fail))` for a genuine property failure, which panics with
/// the case number and reason.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Option<Result<(), TestCaseError>>,
{
    let seed = fnv1a(name.as_bytes());
    let mut attempts = 0u32;
    let mut accepted = 0u32;
    while accepted < config.cases {
        if attempts >= config.cases.saturating_mul(config.max_local_rejects) {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::new(seed ^ (attempts as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        attempts += 1;
        match f(&mut rng) {
            None | Some(Err(TestCaseError::Reject(_))) => continue,
            Some(Ok(())) => accepted += 1,
            Some(Err(TestCaseError::Fail(reason))) => {
                panic!(
                    "proptest '{name}' failed at case {accepted} (attempt {attempts}): {reason}"
                );
            }
        }
    }
}
