//! Deterministic case runner and RNG for the proptest shim.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Attempts (rejections included) allowed per accepted case.
    pub max_local_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_local_rejects: 1000,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed; the whole test fails.
    Fail(String),
    /// The case was rejected (`prop_assume!`); it is resampled.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty domain");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Resolves `<source stem>.proptest-regressions` for a `file!()` path.
///
/// `file!()` paths are workspace-relative while tests run from the
/// package root, so each path suffix is tried in turn; the first
/// candidate that exists wins, and otherwise the first whose parent
/// directory exists (so a new failure can create the file beside its
/// test source).
fn regression_path(source_file: &str) -> Option<std::path::PathBuf> {
    let stem = source_file.strip_suffix(".rs")?;
    let full = std::path::PathBuf::from(format!("{stem}.proptest-regressions"));
    let components: Vec<_> = full.iter().collect();
    let candidates: Vec<std::path::PathBuf> = (0..components.len())
        .map(|skip| components[skip..].iter().collect())
        .collect();
    candidates
        .iter()
        .find(|c| c.is_file())
        .or_else(|| {
            candidates
                .iter()
                .find(|c| c.parent().is_some_and(std::path::Path::is_dir))
        })
        .cloned()
}

/// Parses the `cc <hex>` seed lines of a proptest regression file.
///
/// A 16-digit hex token is taken verbatim as a [`TestRng`] seed (the
/// format this shim persists); longer tokens — upstream proptest
/// persists 64 hex digits of RNG state — are hashed down to a
/// deterministic 64-bit seed so checked-in files from the real crate
/// still replay a stable extra case.
pub fn parse_regression_seeds(contents: &str) -> Vec<u64> {
    contents
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            if !token.chars().all(|c| c.is_ascii_hexdigit()) {
                return None;
            }
            Some(if token.len() == 16 {
                u64::from_str_radix(token, 16).unwrap()
            } else {
                fnv1a(token.as_bytes())
            })
        })
        .collect()
}

fn persist_failure(path: &std::path::Path, seed: u64, name: &str) {
    use std::io::Write as _;
    let mut contents = std::fs::read_to_string(path).unwrap_or_default();
    let line = format!("cc {seed:016x} # seeds TestRng; found by '{name}'");
    if contents.contains(&format!("cc {seed:016x}")) {
        return;
    }
    if !contents.is_empty() && !contents.ends_with('\n') {
        contents.push('\n');
    }
    // Best effort: losing the hint must not mask the test failure.
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
}

/// Runs `config.cases` accepted cases of `f`, resampling rejections.
///
/// `f` returns `None` (or `Some(Err(Reject))`) for a rejected sample and
/// `Some(Err(Fail))` for a genuine property failure, which panics with
/// the case number and reason.
pub fn run_cases<F>(config: ProptestConfig, name: &str, f: F)
where
    F: FnMut(&mut TestRng) -> Option<Result<(), TestCaseError>>,
{
    run_cases_in(config, "", name, f)
}

/// [`run_cases`] with regression-file support: seeds persisted in
/// `<source stem>.proptest-regressions` (next to `source_file`, as
/// produced by `file!()`) are replayed before any novel case, and a
/// failing novel case appends its seed there.
pub fn run_cases_in<F>(config: ProptestConfig, source_file: &str, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Option<Result<(), TestCaseError>>,
{
    let regressions = regression_path(source_file);
    if let Some(path) = regressions.as_ref().filter(|p| p.is_file()) {
        let contents = std::fs::read_to_string(path).unwrap_or_default();
        for seed in parse_regression_seeds(&contents) {
            let mut rng = TestRng::new(seed);
            if let Some(Err(TestCaseError::Fail(reason))) = f(&mut rng) {
                panic!(
                    "proptest '{name}' failed replaying persisted regression \
                     cc {seed:016x} from {}: {reason}",
                    path.display()
                );
            }
        }
    }

    let seed = fnv1a(name.as_bytes());
    let mut attempts = 0u32;
    let mut accepted = 0u32;
    while accepted < config.cases {
        if attempts >= config.cases.saturating_mul(config.max_local_rejects) {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        let case_seed = seed ^ (attempts as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(case_seed);
        attempts += 1;
        match f(&mut rng) {
            None | Some(Err(TestCaseError::Reject(_))) => continue,
            Some(Ok(())) => accepted += 1,
            Some(Err(TestCaseError::Fail(reason))) => {
                if let Some(path) = &regressions {
                    persist_failure(path, case_seed, name);
                }
                panic!(
                    "proptest '{name}' failed at case {accepted} (attempt {attempts}): {reason}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_seed_formats() {
        let contents = "# comment\ncc 00000000000000ff # short\n\
                        cc 341a85f0ef96db63c968681cc81308f5f7add5969073f8ba3f278e63d8ef4461 # long\n\
                        not a seed line\n";
        let seeds = parse_regression_seeds(contents);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0xff);
        // The long form must hash deterministically.
        assert_eq!(
            seeds[1],
            fnv1a(b"341a85f0ef96db63c968681cc81308f5f7add5969073f8ba3f278e63d8ef4461")
        );
    }

    #[test]
    fn regression_path_strips_missing_prefixes() {
        // A workspace-relative path whose prefix does not exist under
        // the current directory falls back to a suffix whose parent
        // does (here: the crate root itself via `src/...`).
        let p = regression_path("no/such/prefix/src/lib.rs");
        assert!(p.is_some());
    }
}
