//! Collection strategies for the proptest shim.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}
