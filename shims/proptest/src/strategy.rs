//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// `sample` returns `None` when the strategy locally rejects the draw
/// (e.g. `prop_filter_map` returned `None`); the runner resamples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, unwrapped.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }

    /// Keeps only values satisfying `f`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            _whence: whence,
        }
    }

    /// Uniformly permutes generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<T>> {
        let mut v = self.inner.sample(rng)?;
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        Some(v)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.sample(rng)
    }
}

/// Weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `options`; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                Some(lo + (unit as $t) * (hi - lo))
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);
