//! Minimal stand-in for the `crossbeam` crate so the workspace builds
//! without a registry. Only the `channel` API this workspace uses is
//! provided, backed by `std::sync::mpsc`.

pub mod channel {
    pub use std::sync::mpsc::{RecvTimeoutError, TryRecvError};

    /// Unbounded MPSC channel matching `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Sending half; clonable and shareable across threads.
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
}
