//! Minimal stand-in for the `bytes` crate so the workspace builds
//! without a registry. `Bytes` is a cheaply-clonable shared byte buffer
//! (refcounted, zero-copy `slice`/`clone`), `BytesMut` an append buffer,
//! and `Buf`/`BufMut` carry the cursor-style accessors the wire code
//! uses. Semantics match the real crate for this subset, including
//! panics on over-reads.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply clonable, immutable, shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies this buffer's remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a zero-copy sub-slice of this buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds: {lo}..{hi} of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Growable byte buffer that freezes into `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Converts into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.vec.len())
    }
}

/// Cursor-style read access over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, consuming them. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u16`, consuming 2 bytes.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`, consuming 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a big-endian `u32`, consuming 4 bytes.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.remaining(),
            "cannot advance past end of buffer"
        );
        self.start += cnt;
    }
}

/// Append-style write access over a byte buffer.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(7);
        m.put_u16_le(300);
        m.put_slice(b"ab");
        let b = m.freeze();
        assert_eq!(b.len(), 8);
        let tail = b.slice(4..);
        let mut cur = b.clone();
        assert_eq!(cur.get_u32_le(), 7);
        assert_eq!(cur.get_u16_le(), 300);
        assert_eq!(&cur[..], b"ab");
        assert_eq!(&tail[2..], b"ab");
    }

    #[test]
    #[should_panic]
    fn over_read_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        let _ = b.get_u32_le();
    }
}
