//! Minimal stand-in for the `libc` crate so the workspace builds without
//! a registry. Declares only the symbols this workspace actually calls.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// Linux `CLOCK_THREAD_CPUTIME_ID`.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}
