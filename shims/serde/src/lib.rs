//! Minimal stand-in for `serde` so the workspace builds without a
//! registry. The workspace derives `Serialize`/`Deserialize` as wire-
//! format documentation but contains no serializer crate, so marker
//! traits plus no-op derives are sufficient.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
