//! No-op `Serialize`/`Deserialize` derives. The workspace derives these
//! traits for wire-format documentation purposes but never instantiates a
//! serializer, so empty impl expansions keep every call site compiling
//! without the real serde machinery (unavailable offline).

use proc_macro::TokenStream;

/// Accepts (and ignores) `#[derive(Serialize)]` plus `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts (and ignores) `#[derive(Deserialize)]` plus `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
