//! Renders the four paper test samples (Figure 7) through the full
//! pipeline and writes PGM images plus a sparsity report — a compact way
//! to see why each sample stresses the compositing methods differently.
//!
//! ```text
//! cargo run --release --example render_gallery
//! ```

use slsvr::compositing::Method;
use slsvr::image::pgm::save_pgm;
use slsvr::system::{Experiment, ExperimentConfig};
use slsvr::volume::DatasetKind;

fn main() {
    println!(
        "{:<12} {:>10} {:>18} {:>10}  file",
        "dataset", "non-blank", "bounds", "density"
    );
    for dataset in DatasetKind::all() {
        let config = ExperimentConfig {
            dataset,
            image_size: 384,
            processors: 8,
            volume_dims: Some([160, 160, 72]),
            ..Default::default()
        };
        let experiment = Experiment::prepare(&config);
        let out = experiment.run(Method::Bsbrc);
        let bounds = out.image.bounding_rect();
        let density = if bounds.area() > 0 {
            out.image.non_blank_count() as f64 / bounds.area() as f64
        } else {
            0.0
        };
        let path = format!("gallery_{}.pgm", dataset.name());
        save_pgm(&out.image, &path).expect("save image");
        println!(
            "{:<12} {:>10} {:>18} {:>10.2}  {path}",
            dataset.name(),
            out.image.non_blank_count(),
            format!("{:?}", (bounds.width(), bounds.height())),
            density
        );
    }
    println!("\nEngine_low/Head: dense bounds (BSBR competitive).");
    println!("Engine_high/Cube: sparse bounds (BSBRC/BSLC win on traffic).");
}
