//! Viewing-point rotation study (Section 3.2): as the view rotates
//! along one or two axes, more receiving bounding rectangles become
//! non-empty — from about `log ∛P` for a frontal orthogonal view up to
//! `log P` for a two-axis rotation — and BSBR/BSBRC message sizes grow
//! accordingly.
//!
//! ```text
//! cargo run --release --example view_rotation
//! ```

use slsvr::compositing::Method;
use slsvr::system::{Experiment, ExperimentConfig};
use slsvr::volume::DatasetKind;

fn main() {
    let p = 64;
    let stages = 6; // log2(64)
    let base = ExperimentConfig {
        dataset: DatasetKind::Head,
        image_size: 128,
        processors: p,
        volume_dims: Some([64, 64, 64]), // cubic → 4×4×4 block grid
        ..Default::default()
    };
    println!("Head, 64³ volume, P = {p} (4×4×4 blocks), BSBRC — rotation sweep\n");
    println!(
        "{:>7} {:>7} {:>14} {:>15} {:>14} {:>12}",
        "rot_x", "rot_y", "max non-empty", "mean non-empty", "total bytes", "T_total(ms)"
    );
    for (rx, ry) in [
        (0.0, 0.0),
        (15.0, 0.0),
        (35.0, 0.0),
        (0.0, 35.0),
        (20.0, 20.0),
        (35.0, 35.0),
    ] {
        let config = ExperimentConfig {
            rot_x_deg: rx,
            rot_y_deg: ry,
            ..base
        };
        let experiment = Experiment::prepare(&config);
        let out = experiment.run(Method::Bsbrc);
        let nonempty: Vec<usize> = out
            .per_rank
            .iter()
            .map(|s| stages - s.empty_recv_rects())
            .collect();
        let max = nonempty.iter().max().unwrap();
        let mean = nonempty.iter().sum::<usize>() as f64 / p as f64;
        println!(
            "{:>7.0} {:>7.0} {:>14} {:>15.2} {:>14} {:>12.2}",
            rx,
            ry,
            max,
            mean,
            out.aggregate.total_bytes,
            out.aggregate.t_total_ms()
        );
    }
    println!(
        "\nFrontal views leave many receiving rectangles empty (the paper's\n\
         log∛P regime); rotating along one axis raises the count, and a\n\
         two-axis rotation drives the busiest processor to the log P = {stages}\n\
         ceiling — Section 3.2's progression."
    );
}
