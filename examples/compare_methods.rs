//! Compares all seven compositing methods (the paper's four plus the
//! three related-work baselines) on one workload, printing a table like
//! the rows of Table 1 extended with M_max and message counts.
//!
//! ```text
//! cargo run --release --example compare_methods [-- <processors>]
//! ```

use slsvr::compositing::Method;
use slsvr::system::{Experiment, ExperimentConfig};
use slsvr::volume::DatasetKind;

fn main() {
    let processors: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let config = ExperimentConfig {
        dataset: DatasetKind::EngineHigh,
        image_size: 384,
        processors,
        volume_dims: Some([128, 128, 64]),
        ..Default::default()
    };
    println!(
        "dataset {}, {}² frame, P = {processors}\n",
        config.dataset.name(),
        config.image_size
    );
    let experiment = Experiment::prepare(&config);
    let reference = experiment.reference();

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "method", "comp(ms)", "comm(ms)", "total(ms)", "M_max(B)", "ok"
    );
    for method in Method::all() {
        let out = experiment.run(method);
        let ok = out.image.max_abs_diff(&reference) < 2e-4;
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>12} {:>10}",
            method.name(),
            out.aggregate.t_comp_ms(),
            out.aggregate.t_comm_ms(),
            out.aggregate.t_total_ms(),
            out.aggregate.m_max,
            if ok { "✓" } else { "✗" }
        );
    }
}
