//! The paper's motivating scenario: interactive exploration. Orbits the
//! camera around the engine and reports the compositing-bound frame
//! rate of each method on the modeled SP2 — the number the compositing
//! bottleneck caps, no matter how fast rendering scales.
//!
//! ```text
//! cargo run --release --example interactive_rates
//! ```

use slsvr::compositing::Method;
use slsvr::system::animation::Animation;
use slsvr::system::ExperimentConfig;
use slsvr::volume::DatasetKind;

fn main() {
    let animation = Animation {
        base: ExperimentConfig {
            dataset: DatasetKind::EngineHigh,
            image_size: 256,
            processors: 16,
            volume_dims: Some([96, 96, 48]),
            ..Default::default()
        },
        frames: 6,
        sweep_y_deg: 120.0,
        sweep_x_deg: 20.0,
    };

    println!(
        "orbiting {} over {} frames, {}² frame, P = {}\n",
        animation.base.dataset.name(),
        animation.frames,
        animation.base.image_size,
        animation.base.processors
    );
    println!(
        "{:<8} {:>16} {:>18}",
        "method", "avg T_total(ms)", "compositing fps"
    );
    for method in [Method::Bs, Method::Bsbr, Method::Bslc, Method::Bsbrc] {
        let frames = animation.run(method);
        let avg_ms =
            frames.iter().map(|f| f.composite_seconds).sum::<f64>() / frames.len() as f64 * 1e3;
        let fps = Animation::compositing_fps(&frames);
        println!("{:<8} {:>16.2} {:>18.2}", method.name(), avg_ms, fps);
    }
    println!(
        "\nThe compositing phase caps the interactive rate regardless of\n\
         render scaling — the paper's core motivation. BSBRC sustains the\n\
         highest rate on the modeled SP2."
    );
}
