//! Traces every message of a compositing run and prints the per-stage
//! communication timeline — which pairs exchanged, how many bytes, and
//! how the volume shrinks stage by stage (the `A/2^k` halving at the
//! heart of binary swap).
//!
//! ```text
//! cargo run --release --example message_timeline
//! ```

use slsvr::comm::trace::EventKind;
use slsvr::comm::{run_group_traced, CostModel};
use slsvr::compositing::{composite, Method};
use slsvr::render::{render_block, Camera, RenderParams};
use slsvr::volume::{kd_partition, Dataset, DatasetKind};

fn main() {
    let dims = [64, 64, 32];
    let p = 8;
    let dataset = Dataset::with_dims(DatasetKind::EngineHigh, dims);
    let camera = Camera::orbit(dims, 192, 192, 20.0, 30.0);
    let partition = kd_partition(dims, p);
    let depth = partition.depth_order(camera.view_dir);
    let params = RenderParams::default();
    let images: Vec<_> = partition
        .subvolumes()
        .iter()
        .map(|b| render_block(&dataset.volume, b, &dataset.transfer, &camera, &params))
        .collect();

    for method in [Method::Bs, Method::Bsbrc] {
        let (_, trace) = run_group_traced(p, CostModel::sp2(), |ep| {
            let mut img = images[ep.rank()].clone();
            composite(method, ep, &mut img, &depth).unwrap()
        });

        println!("== {} ==", method.name());
        // Group sends by stage tag (STAGE_BASE = 0x1000).
        let mut per_stage: Vec<(u32, usize, usize)> = Vec::new(); // (stage, msgs, bytes)
        for e in trace.events() {
            if e.kind != EventKind::Send || e.tag < 0x1000 || e.tag >= 0x1000 + 16 {
                continue;
            }
            let stage = e.tag - 0x1000;
            match per_stage.iter_mut().find(|(s, _, _)| *s == stage) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += e.bytes;
                }
                None => per_stage.push((stage, 1, e.bytes)),
            }
        }
        per_stage.sort_by_key(|&(s, _, _)| s);
        println!(
            "{:>6} {:>6} {:>12} {:>14}",
            "stage", "msgs", "bytes", "bytes/msg"
        );
        for (stage, msgs, bytes) in &per_stage {
            println!(
                "{:>6} {:>6} {:>12} {:>14.0}",
                stage + 1,
                msgs,
                bytes,
                *bytes as f64 / *msgs as f64
            );
        }
        let counts = trace.message_counts(p);
        let total_msgs: usize = counts.iter().map(|&(s, _)| s).sum();
        println!("total messages: {total_msgs}\n");
    }
    println!(
        "BS halves dense frames each stage (the 16·A/2^k law); BSBRC's\n\
         per-stage bytes track the object's bounding rectangle instead."
    );
}
