//! The complete three-phase sort-last system (Figure 1): rank 0 loads a
//! volume from disk, *scatters* blocks over the simulated network, each
//! rank renders only its local block, and the subimages are composited
//! and gathered. Contrast with `quickstart`, which shares the volume in
//! memory to isolate the compositing phase.
//!
//! ```text
//! cargo run --release --example distributed_pipeline
//! ```

use slsvr::compositing::Method;
use slsvr::system::{run_distributed, ExperimentConfig};
use slsvr::volume::{io, Dataset, DatasetKind};

fn main() {
    // Stage a volume file, as a real deployment would have.
    let dims = [96, 96, 48];
    let path = std::env::temp_dir().join("engine_demo.vvol");
    let dataset = Dataset::with_dims(DatasetKind::EngineLow, dims);
    io::save_volume(&dataset.volume, &path).expect("write volume file");
    let loaded = io::load_volume(&path).expect("read volume file");
    assert_eq!(loaded, dataset.volume);
    println!(
        "staged {}x{}x{} volume at {} ({} bytes)",
        dims[0],
        dims[1],
        dims[2],
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );

    let config = ExperimentConfig {
        dataset: DatasetKind::EngineLow,
        image_size: 256,
        processors: 8,
        method: Method::Bsbrc,
        volume_dims: Some(dims),
        ..Default::default()
    };
    let out = run_distributed(&config);

    println!(
        "\nphase 1 (partitioning): {} bytes of blocks scattered",
        out.partition_bytes
    );
    let render_ms: Vec<String> = out
        .render_seconds
        .iter()
        .map(|s| format!("{:.1}", s * 1e3))
        .collect();
    println!(
        "phase 2 (rendering):    per-rank wall ms = [{}]",
        render_ms.join(", ")
    );
    let comp_bytes: u64 = out.per_rank.iter().map(|s| s.sent_bytes()).sum();
    println!(
        "phase 3 (compositing):  {} bytes exchanged with {}",
        comp_bytes,
        config.method.name()
    );
    println!(
        "\nfinal image: {} non-blank pixels, bounds {:?}",
        out.image.non_blank_count(),
        out.image.bounding_rect()
    );
    slsvr::image::pgm::save_pgm(&out.image, "distributed.pgm").expect("save image");
    println!("wrote distributed.pgm");
    let _ = std::fs::remove_file(&path);
}
