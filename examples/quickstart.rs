//! Quickstart: render a small engine dataset on 8 simulated processors,
//! composite with BSBRC, save the image and print the cost breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use slsvr::compositing::Method;
use slsvr::system::{Experiment, ExperimentConfig};
use slsvr::volume::DatasetKind;

fn main() {
    // Configure one experiment cell: dataset, frame size, processor
    // count and compositing method. Everything else defaults to the
    // paper's setup (SP2 cost model, oblique view).
    let config = ExperimentConfig {
        dataset: DatasetKind::EngineLow,
        image_size: 256,
        processors: 8,
        method: Method::Bsbrc,
        volume_dims: Some([128, 128, 64]), // reduced for a fast first run
        ..Default::default()
    };

    // Prepare = partition the volume into 8 blocks and ray-cast each
    // block into a sparse subimage (one thread per simulated processor).
    println!(
        "rendering {} on {} processors…",
        config.dataset.name(),
        config.processors
    );
    let experiment = Experiment::prepare(&config);
    for (rank, img) in experiment.subimages().iter().enumerate() {
        println!(
            "  rank {rank}: {:>6} non-blank pixels, bounds {:?}",
            img.non_blank_count(),
            img.bounding_rect()
        );
    }

    // Composite with BSBRC and gather the final image at rank 0.
    let outcome = experiment.run(config.method);
    println!("\ncompositing with {}:", config.method.name());
    println!(
        "  T_comp  = {:>8.2} ms (measured, scaled to the SP2 machine model)",
        outcome.aggregate.t_comp_ms()
    );
    println!(
        "  T_comm  = {:>8.2} ms (modeled: T_s + bytes·T_c per message)",
        outcome.aggregate.t_comm_ms()
    );
    println!("  T_total = {:>8.2} ms", outcome.aggregate.t_total_ms());
    println!("  M_max   = {:>8} bytes", outcome.aggregate.m_max);

    // Verify against the sequential reference compositor.
    let reference = experiment.reference();
    let diff = outcome.image.max_abs_diff(&reference);
    println!("  max abs diff vs sequential reference: {diff:.2e}");
    assert!(diff < 2e-4);

    slsvr::image::pgm::save_pgm(&outcome.image, "quickstart.pgm").expect("save image");
    slsvr::image::png::save_png_gray(&outcome.image, "quickstart.png").expect("save image");
    println!("\nwrote quickstart.pgm and quickstart.png");
}
